"""Shared-nothing sharded estimation serving (cross-process tenancy).

:class:`~repro.serving.service.EstimationService` scales across threads,
but its fits contend for one GIL and its engines live in one process.
:class:`ShardedEstimationService` keeps the exact same serving contract
— it *is* a :class:`~repro.serving.service.BaseEstimationService`, so
registration, per-template locks, version-keyed snapshots, burst
refresh and :class:`~repro.serving.service.ServiceStats` are literally
the shared skeleton — while moving every fit into a pool of shard
worker processes:

* **Routed partitioning.**  Template keys are *placed* by an explicit
  routing table; a fresh registration seeds its route from a stable
  CRC32 (never the salted built-in ``hash``), so the default placement
  is identical across processes, restarts and replays — but placement
  is a degree of freedom, not an invariant: :meth:`migrate` replays a
  template's authoritative history onto another shard and flips its
  route atomically, and :meth:`resize` grows or shrinks the pool live
  (shrink migrates the doomed shards' templates first).  Every route
  flip bumps a monotone *route version*; a straggler RPC that reaches
  the old shard after the flip is refused with a loud
  :class:`StaleRouteError` naming that version, never served from the
  dropped replica.
* **Shared nothing.**  Each worker owns its own
  :class:`~repro.ires.modelling.Modelling`, estimation strategy,
  incremental DREAM engines and :class:`~repro.core.cache.ModelCache`
  (built from a picklable ``strategy_factory``); shards never share
  mutable state, so N shards fit on N cores with no GIL crosstalk.
* **Lazy row streaming.**  The parent keeps the authoritative
  histories; each fit RPC carries only the rows appended since the
  shard last saw that template.  At every fit point the replica is
  bitwise-identical to the parent history, which makes the workers
  oracle-equivalent to the in-process service.
* **Crash detection + deterministic replay.**  A dead or hung worker
  (``rpc_timeout``) is detected on the next RPC, respawned, and re-fed
  every one of its templates' full histories before the call is
  retried — the refit walks the identical window schedule, so
  predictions are unchanged (property-tested, including a forced
  mid-run crash).  Worker-*infrastructure* failures (a double crash, a
  replica desync, a hung RPC) surface as
  :class:`ShardedServingError` and are never silently swallowed by a
  burst, unlike a plain "history still too short" skip.
* **Load accounting + rebalancing.**  Each shard tracks a fit
  wall-time EWMA, an RPC queue depth (threads waiting on the shard
  lock) and its pending-row backlog; :meth:`shard_loads` /
  :meth:`template_loads` publish the snapshots a
  :class:`~repro.serving.topology.RebalancePolicy` turns into
  hottest-template-to-coldest-shard moves, applied through
  :meth:`rebalance`.  Placement never changes predictions — the chaos
  harness (``tests/chaos.py``) proves any interleaving of migrations,
  crashes and resizes bitwise-equivalent to the in-process oracle.
* **Graceful shutdown.**  :meth:`ShardedEstimationService.close` (or
  the context manager) drains the pool: polite ``shutdown`` RPC first,
  ``terminate`` as the backstop.  Workers are daemonic, so a dying
  parent never leaks them.

Predictions still run in the parent, lock-free, on the immutable
:class:`~repro.ires.modelling.FittedCostModel` snapshot each fit RPC
returns — estimation latency is identical to the in-process service;
only the (CPU-heavy) fitting crosses the process boundary.

See :mod:`repro.serving.worker` for the RPC message shapes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack, contextmanager
from typing import Callable

from repro.common.errors import EstimationError, ValidationError
from repro.core.cache import CacheStats
from repro.ires.modelling import EstimationStrategy, FittedCostModel, Modelling
from repro.serving.service import BaseEstimationService, _Template
from repro.serving.topology import (
    LOAD_EWMA_ALPHA,
    RebalanceOutcome,
    RebalancePolicy,
    ShardLoad,
    TemplateLoad,
)
from repro.serving.worker import PROTOCOL_VERSION, Row, worker_main

#: Default shard-pool width: one worker per core up to a small ceiling
#: (past the core count, extra processes only add IPC overhead).
DEFAULT_SHARD_WORKERS = max(2, min(8, os.cpu_count() or 2))


class ShardedServingError(EstimationError):
    """A shard worker failed in a way that is not a plain estimation or
    validation error (protocol desync, repeated crash, hung RPC, use
    after close).  Never swallowed by burst refreshes."""


class WorkerCrashError(ShardedServingError):
    """Internal signal: the shard's worker died or stopped answering.

    Raised by the low-level RPC layer and normally consumed by the
    respawn-and-retry path; it only escapes when the *respawned* worker
    fails again on the same call.
    """


class StaleRouteError(ShardedServingError):
    """An RPC reached a shard *after* its template was migrated away.

    The worker keeps a tombstone (key -> route version) for every
    replica it was told to ``forget``, and refuses any straggler request
    that still names the key.  Loud by design: a fit silently served
    from a dropped replica would mean the atomic route flip leaked."""


def shard_of(key: str, workers: int) -> int:
    """Stable shard index of a template key (CRC32, not salted hash)."""
    return zlib.crc32(key.encode("utf-8")) % workers


class _Shard:
    """One worker process plus its pipe; ``lock`` serialises the shard's
    RPC traffic (one in-flight request per worker).  A template's
    ``synced`` replica cursor is read and written only under its
    shard's lock.  ``fit_ewma`` and ``waiters`` are the shard's load
    accounting (guarded by the service's ``_stats_lock``): the EWMA of
    one fit RPC's parent-observed wall time per template, and how many
    threads currently wait for (or hold) the shard lock on a fit path —
    the RPC queue depth."""

    __slots__ = ("index", "process", "conn", "lock", "keys", "fit_ewma", "waiters")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.lock = threading.RLock()
        self.keys: set[str] = set()
        self.fit_ewma: float | None = None
        self.waiters = 0


class ShardedEstimationService(BaseEstimationService):
    """Cross-process drop-in for :class:`EstimationService`.

    Parameters
    ----------
    strategy_factory:
        Picklable zero-argument callable building each worker's private
        :class:`~repro.ires.modelling.EstimationStrategy` (e.g.
        ``functools.partial(worker.strategy_from_config, config)`` or
        ``functools.partial(worker.dream_strategy, max_window=20)``).
        A factory rather than an instance: strategies hold locks and
        caches that must not cross the process boundary.
    workers:
        Shard count (>= 1); default :data:`DEFAULT_SHARD_WORKERS`.
    modelling:
        Optional parent-side registry to mirror registrations into, so
        an :class:`~repro.ires.platform.IReSPlatform` sharing it sees
        the same histories.  The parent never fits through it.
    max_workers:
        Width of the :meth:`refresh` fan-out thread pool (capped at the
        shard count; threads beyond one per shard cannot help because a
        shard answers one RPC at a time).
    rpc_timeout:
        Seconds to wait for a single worker reply before declaring the
        worker hung, terminating it, and respawning (``None`` = wait
        forever).  Configurable through
        ``FederationConfig(shard_rpc_timeout=...)``.
    """

    def __init__(
        self,
        strategy_factory: Callable[[], EstimationStrategy],
        workers: int | None = None,
        modelling: Modelling | None = None,
        max_workers: int | None = None,
        rpc_timeout: float | None = None,
        mp_context: str | None = None,
    ):
        super().__init__(max_workers=max_workers)
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if rpc_timeout is not None and not rpc_timeout > 0:
            raise ValidationError(f"rpc_timeout must be > 0, got {rpc_timeout}")
        self.workers = workers or DEFAULT_SHARD_WORKERS
        self.rpc_timeout = rpc_timeout
        self._strategy_factory = strategy_factory
        self._modelling = modelling
        methods = multiprocessing.get_all_start_methods()
        start = mp_context or ("fork" if "fork" in methods else "spawn")
        self._ctx = multiprocessing.get_context(start)
        self._respawns = 0
        self._rpc_ops: dict[str, int] = {}
        self._closed = False
        # Explicit routing table: key -> shard index.  Seeded from CRC32
        # at registration, rewritten by migrate()/resize().  Reads are
        # GIL-atomic dict lookups; writes happen under the owning
        # template's lock (plus both shard locks), which is what freezes
        # routes for every fit path — they all hold the template lock
        # before resolving a shard.
        self._routes: dict[str, int] = {}
        self._route_version = 0
        self._migrations = 0
        #: Optional observer ``(routes, workers)`` invoked with a
        #: routing-table copy after every route flip (migrate/resize) —
        #: the durability plane journals placement through it so
        #: recovery replays decisions instead of re-deriving them.
        self.on_route_change = None
        # Serialises control-plane operations (resize, rebalance cycles)
        # against each other; the data plane never takes it.
        self._topology_lock = threading.RLock()
        self._shards = [_Shard(index) for index in range(self.workers)]
        for shard in self._shards:
            self._start_worker(shard)

    # Worker lifecycle -------------------------------------------------------

    def _start_worker(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._strategy_factory),
            name=f"estimation-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        # The parent must drop its copy of the child end so a dead
        # worker shows up as EOF on this side of the pipe.
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn

    def _respawn_locked(self, shard: _Shard) -> None:
        """Replace a dead worker and replay its shard deterministically.

        Caller holds ``shard.lock``.  Every template assigned to the
        shard is re-registered and fed its *full* parent-side history,
        so the fresh replica's next fit walks the identical window
        schedule the dead worker would have.
        """
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
        if shard.process is not None and shard.process.is_alive():
            shard.process.terminate()
            shard.process.join(timeout=5)
        self._start_worker(shard)
        with self._stats_lock:
            self._respawns += 1
        for key in sorted(shard.keys):
            state = self._templates[key]
            rows = self._encode_rows(state, start=0)
            self._call_locked(
                shard,
                {
                    "op": "register",
                    "key": key,
                    "feature_names": state.history.feature_names,
                    "metrics": state.history.metric_names,
                },
            )
            if rows:
                self._call_locked(shard, {"op": "extend", "key": key, "rows": rows})
            state.synced = len(rows)

    def inject_worker_crash(self, index: int) -> None:
        """Hard-kill one shard's worker (test/bench hook).

        The next serving RPC that touches the shard detects the death,
        respawns the worker and replays its templates; this method only
        delivers the crash and waits for the process to die.
        """
        shard = self._shards[index]
        with shard.lock:
            try:
                shard.conn.send({"op": "crash"})
            except (BrokenPipeError, OSError):
                pass
            shard.process.join(timeout=10)

    def inject_worker_hang(self, index: int) -> None:
        """Wedge one shard's worker without killing it (test hook).

        The process stays alive but stops answering, which is the
        failure mode only the ``rpc_timeout`` guard can detect — so this
        hook refuses to run without one (the next RPC would block
        forever).  The next serving RPC that touches the shard waits out
        the timeout, terminates the wedged process and respawns it.
        """
        if self.rpc_timeout is None:
            raise ValidationError(
                "inject_worker_hang requires rpc_timeout: without the "
                "hung-worker guard the next RPC would wait forever"
            )
        shard = self._shards[index]
        with shard.lock:
            try:
                shard.conn.send({"op": "hang", "v": PROTOCOL_VERSION})
            except (BrokenPipeError, OSError):
                pass

    @staticmethod
    def _shutdown_shard(shard: _Shard, timeout: float) -> None:
        """Drain one shard: polite shutdown RPC, terminate as backstop.
        Caller holds (or exclusively owns) the shard."""
        with shard.lock:
            if shard.conn is not None:
                try:
                    shard.conn.send({"op": "shutdown"})
                except (BrokenPipeError, OSError):
                    pass
            if shard.process is not None:
                shard.process.join(timeout=timeout)
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(timeout=timeout)
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:
                    pass
                shard.conn = None

    def close(self, timeout: float = 5.0) -> None:
        """Drain the pool: polite shutdown RPC, terminate as backstop."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
        for shard in tuple(self._shards):
            self._shutdown_shard(shard, timeout)

    def _ensure_open(self) -> None:
        with self._registry_lock:
            if self._closed:
                raise ShardedServingError("sharded service is closed")

    # RPC --------------------------------------------------------------------

    def _call_locked(self, shard: _Shard, message: dict):
        """One request/reply exchange; caller holds ``shard.lock``.

        Raises :class:`WorkerCrashError` when the worker is dead, the
        pipe broke, or ``rpc_timeout`` elapsed (the hung worker is
        terminated first so the retry starts from a clean respawn).
        """
        if self._closed or shard.conn is None:
            raise ShardedServingError("sharded service is closed")
        message.setdefault("v", PROTOCOL_VERSION)
        with self._stats_lock:
            self._rpc_ops[message["op"]] = self._rpc_ops.get(message["op"], 0) + 1
        started = time.perf_counter()
        try:
            shard.conn.send(message)
        except (BrokenPipeError, OSError, ValueError) as error:
            raise WorkerCrashError(
                f"shard {shard.index} worker is gone: {error}"
            ) from error
        deadline = None if self.rpc_timeout is None else time.monotonic() + self.rpc_timeout
        while True:
            try:
                if shard.conn.poll(0.05):
                    reply = shard.conn.recv()
                    break
            except (EOFError, OSError) as error:
                raise WorkerCrashError(
                    f"shard {shard.index} worker died mid-call"
                ) from error
            if not shard.process.is_alive() and not shard.conn.poll():
                raise WorkerCrashError(
                    f"shard {shard.index} worker exited with code "
                    f"{shard.process.exitcode}"
                )
            if deadline is not None and time.monotonic() > deadline:
                shard.process.terminate()
                shard.process.join(timeout=5)
                raise WorkerCrashError(
                    f"shard {shard.index} worker hung past "
                    f"rpc_timeout={self.rpc_timeout}s on {message['op']!r}"
                )
        if message["op"] in ("fit", "fit_many"):
            # Per-template fit cost EWMA, parent-observed (RPC included):
            # the wall-time half of the shard's load accounting.
            span = len(message.get("items", ())) or 1
            sample = (time.perf_counter() - started) / span
            with self._stats_lock:
                if shard.fit_ewma is None:
                    shard.fit_ewma = sample
                else:
                    shard.fit_ewma = (
                        LOAD_EWMA_ALPHA * sample
                        + (1.0 - LOAD_EWMA_ALPHA) * shard.fit_ewma
                    )
        if reply["ok"]:
            return reply["value"]
        kind, text = reply["kind"], reply["error"]
        if kind == "validation":
            error = ValidationError(text)
        elif kind == "estimation":
            error = EstimationError(text)
        elif kind == "stale_route":
            error = StaleRouteError(f"shard {shard.index}: {text}")
        else:
            error = ShardedServingError(f"shard {shard.index}: {text}")
        error.worker_reply = reply  # op-specific extras (e.g. "appended")
        raise error

    @staticmethod
    def _encode_rows(state: _Template, start: int) -> list[Row]:
        observations = state.history.observations
        return [
            (obs.tick, dict(obs.features), dict(obs.costs))
            for obs in observations[start:]
        ]

    # Registration -----------------------------------------------------------

    def shard_of(self, key: str) -> int:
        """The shard index serving ``key``: the routing-table entry for
        a registered key, the stable CRC32 default otherwise (so the
        would-be placement of a not-yet-registered key is still
        answerable, and matches the module-level :func:`shard_of`)."""
        route = self._routes.get(key)
        if route is not None:
            return route
        return shard_of(key, self.workers)

    def _on_register(self, state: _Template) -> None:
        """Wire a fresh template to its shard.

        The key joins ``shard.keys`` *before* the register RPC, inside
        one shard-lock hold: if the worker crashes mid-registration the
        respawn replay already covers this template (the worker-side
        register is idempotent, so replay-then-nothing is fine), and a
        concurrent respawn can never run between the RPC and the
        bookkeeping.  Pre-existing history rows ride to the replica
        with the first fit.
        """
        if self._modelling is not None:
            self._modelling.register(state.key, state.history)
        index = shard_of(state.key, self.workers)
        shard = self._shards[index]
        message = {
            "op": "register",
            "key": state.key,
            "feature_names": state.history.feature_names,
            "metrics": state.history.metric_names,
        }
        with shard.lock:
            self._routes[state.key] = index
            shard.keys.add(state.key)
            try:
                self._call_locked(shard, message)
            except WorkerCrashError:
                # The replay registers (and back-fills) this key too.
                self._respawn_locked(shard)

    # Fitting ------------------------------------------------------------

    @contextmanager
    def _queue_slot(self, shard: _Shard):
        """Count this thread toward the shard's RPC queue depth while it
        waits for (and holds) the shard lock on a fit path."""
        with self._stats_lock:
            shard.waiters += 1
        try:
            yield
        finally:
            with self._stats_lock:
                shard.waiters -= 1

    def _fit_state(self, state: _Template) -> FittedCostModel:
        """Ship the unsynced rows and fit on the shard; caller holds the
        template lock.

        The delta is computed *under the shard lock* so it is always
        relative to what the replica actually holds — a respawn that
        replayed the full history in between resets ``synced`` before
        this runs, and the retry recomputes its delta after the replay.
        """
        shard = self._shards[self.shard_of(state.key)]
        with self._queue_slot(shard), shard.lock:
            try:
                fitted = self._fit_locked(shard, state)
            except WorkerCrashError:
                self._respawn_locked(shard)
                fitted = self._fit_locked(shard, state)
        return fitted

    def _fit_locked(self, shard: _Shard, state: _Template) -> FittedCostModel:
        rows = self._encode_rows(state, start=state.synced)
        try:
            fitted = self._call_locked(
                shard,
                {
                    "op": "fit",
                    "key": state.key,
                    "rows": rows,
                    "expected_size": state.synced + len(rows),
                },
            )
        except WorkerCrashError:
            raise  # caller respawns; the replay resets the sync cursor
        except (ValidationError, EstimationError) as error:
            # The replica appended (part of) the delta before the fit
            # failed — a too-short history fails *after* its rows land.
            # Advance the cursor by exactly that amount or the next fit
            # would re-send the rows and corrupt the replica.
            state.synced += getattr(error, "worker_reply", {}).get("appended", 0)
            raise
        state.synced += len(rows)
        return fitted

    @staticmethod
    def _is_infrastructure_error(error: EstimationError) -> bool:
        """A broken shard must surface from a burst, not be skipped as
        "cannot fit yet" (which would silently serve stale snapshots)."""
        return isinstance(error, ShardedServingError)

    def _fit_stale(
        self, stale: list[str], parallel: bool
    ) -> dict[str, FittedCostModel | None]:
        """One parent thread per busy shard issues that shard's fit
        RPCs; the actual fitting runs in the worker processes, so a
        burst overlaps across cores with no GIL contention."""
        by_shard: dict[int, list[str]] = {}
        for key in stale:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        results: dict[str, FittedCostModel | None] = {}
        if parallel and len(by_shard) > 1:
            width = min(self.max_workers, len(by_shard))

            def fit_group(group: list[str]) -> list[tuple[str, FittedCostModel | None]]:
                return [(key, self._try_model(key)) for key in group]

            with ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="shard-burst"
            ) as pool:
                for fitted in pool.map(fit_group, by_shard.values()):
                    results.update(fitted)
        else:
            for key in stale:
                results[key] = self._try_model(key)
        return results

    def _fit_batch(
        self, stale: list[str]
    ) -> dict[str, FittedCostModel | EstimationError]:
        """One coalesced ``fit_many`` RPC per busy shard.

        The batch-first transport the front door flushes through: every
        shard receives its whole stale group (templates + row deltas) in
        a single pipe round-trip instead of one ``fit`` RPC per
        template.  Groups on different shards fan out across parent
        threads exactly like :meth:`_fit_stale` bursts.
        """
        by_shard: dict[int, list[str]] = {}
        for key in stale:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        groups = list(by_shard.values())
        outcomes: dict[str, FittedCostModel | EstimationError] = {}
        if len(groups) > 1:
            width = min(self.max_workers, len(groups))
            with ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="shard-batch"
            ) as pool:
                for fitted in pool.map(self._fit_group, groups):
                    outcomes.update(fitted)
        elif groups:
            outcomes.update(self._fit_group(groups[0]))
        return outcomes

    def _fit_group(
        self, keys: list[str]
    ) -> dict[str, FittedCostModel | EstimationError]:
        """Fit one stale group through coalesced ``fit_many`` RPCs.

        Lock order matches the single-call path (template lock, then
        shard lock); template locks are taken in sorted key order so two
        concurrent batches can never deadlock each other.  Holding every
        template lock across the RPC keeps the captured history versions
        authoritative — an external append blocks until the batch's
        snapshots are installed.

        The group arrives pre-bucketed by the caller's *stale scan*
        routes, but those may be outdated by the time the locks land: a
        migration between the scan and here moves a key to another
        shard.  Routes *are* frozen once the template locks are held
        (:meth:`migrate` needs them), so the group is re-bucketed by the
        live routing table now and usually collapses back to one shard —
        after a migration it simply issues one ``fit_many`` per live
        shard, sequentially, and a stale-route fit is structurally
        impossible.
        """
        keys = sorted(keys)
        states = [self._state(key) for key in keys]
        outcomes: dict[str, FittedCostModel | EstimationError] = {}
        with ExitStack() as stack:
            for state in states:
                stack.enter_context(state.lock)
            by_shard: dict[int, list[tuple[_Template, int]]] = {}
            for state in states:
                version = state.history.version
                if state.snapshot is not None and state.snapshot_version == version:
                    # Another thread refitted it since the stale scan;
                    # same snapshot hit model() would record.
                    outcomes[state.key] = state.snapshot
                    with self._stats_lock:
                        self._snapshot_hits += 1
                    continue
                by_shard.setdefault(self.shard_of(state.key), []).append(
                    (state, version)
                )
            deferred: Exception | None = None
            for index in sorted(by_shard):
                shard = self._shards[index]
                pending = by_shard[index]
                with self._queue_slot(shard), shard.lock:
                    started = time.perf_counter()
                    try:
                        replies = self._fit_many_locked(shard, pending)
                    except WorkerCrashError:
                        # The replay resets every sync cursor; the retry
                        # recomputes its deltas against the fresh replica.
                        self._respawn_locked(shard)
                        replies = self._fit_many_locked(shard, pending)
                    per_item = (time.perf_counter() - started) / len(pending)
                    for (state, version), reply in zip(pending, replies):
                        # Cursor math holds for success and failure
                        # alike: the worker reports what actually landed.
                        state.synced += reply.get("appended", 0)
                        if reply["ok"]:
                            state.snapshot = reply["value"]
                            state.snapshot_version = version
                            with self._stats_lock:
                                self._fits += 1
                            self._note_template_fit(state, per_item)
                            outcomes[state.key] = reply["value"]
                            continue
                        kind, text = reply["kind"], reply["error"]
                        if kind == "estimation":
                            # "Cannot fit yet" — isolated, never poisons
                            # the shard-mates.
                            outcomes[state.key] = EstimationError(text)
                        elif deferred is None:
                            # Validation/internal failures surface
                            # exactly as the single-call path raises
                            # them — but only after every reply's
                            # bookkeeping has landed.
                            if kind == "validation":
                                deferred = ValidationError(text)
                            elif kind == "stale_route":
                                deferred = StaleRouteError(
                                    f"shard {shard.index}: {text}"
                                )
                            else:
                                deferred = ShardedServingError(
                                    f"shard {shard.index}: {text}"
                                )
            if deferred is not None:
                raise deferred
        return outcomes

    def _fit_many_locked(
        self, shard: _Shard, pending: list[tuple[_Template, int]]
    ) -> list[dict]:
        """Issue one ``fit_many`` for the shard's pending group (caller
        holds the template locks and the shard lock)."""
        items = []
        for state, _version in pending:
            rows = self._encode_rows(state, start=state.synced)
            items.append(
                {
                    "key": state.key,
                    "rows": rows,
                    "expected_size": state.synced + len(rows),
                }
            )
        return self._call_locked(shard, {"op": "fit_many", "items": items})

    # Elastic topology -----------------------------------------------------

    def _replay_onto_locked(self, shard: _Shard, state: _Template) -> int:
        """Register ``state`` on ``shard`` and feed it the full
        authoritative history (caller holds the template lock and the
        shard lock).  Retried once through a respawn — the respawn
        replay only covers ``shard.keys``, which does not include this
        template yet, so the retry starts from a clean, empty replica.
        """

        def ship() -> int:
            self._call_locked(
                shard,
                {
                    "op": "register",
                    "key": state.key,
                    "feature_names": state.history.feature_names,
                    "metrics": state.history.metric_names,
                },
            )
            rows = self._encode_rows(state, start=0)
            if rows:
                self._call_locked(
                    shard, {"op": "extend", "key": state.key, "rows": rows}
                )
            return len(rows)

        try:
            return ship()
        except WorkerCrashError:
            self._respawn_locked(shard)
            return ship()

    def migrate(self, key: str, dst_shard: int) -> bool:
        """Move one template's replica to ``dst_shard``; returns whether
        a move happened (``False`` if it already lives there).

        Authoritative-history replay plus an atomic route flip: under
        the template lock (freezing the route — every fit path resolves
        its shard while holding it) and both shard locks, the full
        parent-side history is replayed onto the destination worker,
        then the routing table, both shards' key sets and the sync
        cursor flip together under a bumped route version.  Finally the
        source worker is told to ``forget`` the replica, leaving a
        version-stamped tombstone: any in-flight RPC that reaches the
        old shard after the flip is refused with a loud
        :class:`StaleRouteError` instead of being served from a dropped
        replica.  Replay walks the identical window schedule the source
        replica did (the crash-respawn guarantee), so a migration is
        bitwise invisible to predictions.
        """
        self._ensure_open()
        if not 0 <= dst_shard < self.workers:
            raise ValidationError(
                f"dst_shard must be in [0, {self.workers}), got {dst_shard}"
            )
        state = self._state(key)
        with state.lock:
            src_index = self.shard_of(key)
            if src_index == dst_shard:
                return False
            src = self._shards[src_index]
            dst = self._shards[dst_shard]
            first, second = sorted((src, dst), key=lambda shard: shard.index)
            with first.lock, second.lock:
                shipped = self._replay_onto_locked(dst, state)
                with self._stats_lock:
                    self._route_version += 1
                    self._migrations += 1
                    version = self._route_version
                self._routes[key] = dst_shard
                src.keys.discard(key)
                dst.keys.add(key)
                state.synced = shipped
                try:
                    self._call_locked(
                        src, {"op": "forget", "key": key, "route_v": version}
                    )
                except WorkerCrashError:
                    # A dead source forgets by dying: its respawn replay
                    # covers src.keys, which no longer includes this key.
                    self._respawn_locked(src)
        # Outside every lock: the observer may take the durability
        # manager's lock, which must stay below template/shard locks.
        self._notify_route_change()
        return True

    def resize(self, workers: int) -> int:
        """Grow or shrink the worker pool live; returns the new width.

        Growth appends fresh (empty) shards — existing routes are
        untouched, so nothing refits.  Shrink first migrates every
        template off the doomed trailing shards to its CRC32 placement
        in the smaller pool (deterministic, so a later restart at the
        new width agrees), then drains the orphaned workers.
        """
        self._ensure_open()
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        with self._topology_lock:
            current = len(self._shards)
            if workers == current:
                return current
            if workers > current:
                for index in range(current, workers):
                    shard = _Shard(index)
                    self._start_worker(shard)
                    self._shards.append(shard)
                self.workers = workers
                with self._stats_lock:
                    self._route_version += 1
                self._notify_route_change()
                return workers
            for doomed in self._shards[workers:]:
                for key in sorted(doomed.keys):
                    self.migrate(key, shard_of(key, workers))
            victims = self._shards[workers:]
            del self._shards[workers:]
            self.workers = workers
            with self._stats_lock:
                self._route_version += 1
            for shard in victims:
                self._shutdown_shard(shard, timeout=5.0)
            self._notify_route_change()
            return workers

    def rebalance(self, policy: RebalancePolicy) -> RebalanceOutcome:
        """Run one control cycle of ``policy`` and apply its plan.

        Serialised by the topology lock (one control cycle at a time);
        the data plane keeps serving throughout — each applied move
        holds only its own template's lock.
        """
        self._ensure_open()
        with self._topology_lock:
            shards, templates = self._load_rows()
            plan = policy.plan(shards, templates)
            grew = None
            if plan.grow_to is not None and plan.grow_to > self.workers:
                grew = self.resize(plan.grow_to)
            # Apply-time migration throttle: moves beyond the cap are
            # deferred (the policy's heat state re-plans them next
            # cycle), bounding replay churn per cycle.
            cap = policy.config.max_migrations_per_cycle
            moves = plan.moves if cap is None else plan.moves[:cap]
            applied = []
            for move in moves:
                if 0 <= move.dst < self.workers and self.migrate(move.key, move.dst):
                    applied.append(move)
            shrank = None
            if plan.shrink_to is not None and plan.shrink_to < self.workers:
                shrank = self.resize(plan.shrink_to)
            return RebalanceOutcome(
                moves=tuple(applied),
                grew_to=grew,
                shrank_to=shrank,
                route_version=self.route_version,
                reason=plan.reason,
                migration_cap=cap,
            )

    def route_table(self) -> dict[str, int]:
        """Copy of the explicit routing table (key -> shard index)."""
        return dict(self._routes)

    def _notify_route_change(self) -> None:
        """Publish the post-flip routing table to the observer (caller
        must not hold template or shard locks — the observer may take
        the durability manager's lock)."""
        if self.on_route_change is not None:
            self.on_route_change(dict(self._routes), self.workers)

    @property
    def route_version(self) -> int:
        """Monotone counter bumped by every route flip (migrate/resize)."""
        with self._stats_lock:
            return self._route_version

    @property
    def migrations(self) -> int:
        """How many template migrations were applied so far."""
        with self._stats_lock:
            return self._migrations

    def _load_rows(self) -> tuple[list[ShardLoad], list[TemplateLoad]]:
        """One consistent-enough pass over the pool's load accounting."""
        shard_rows: list[ShardLoad] = []
        template_rows: list[TemplateLoad] = []
        for shard in tuple(self._shards):
            with shard.lock:
                entries = []
                for key in sorted(shard.keys):
                    state = self._templates.get(key)
                    if state is None:
                        continue
                    entries.append((state, state.history.size - state.synced))
            with self._stats_lock:
                shard_rows.append(
                    ShardLoad(
                        index=shard.index,
                        routed=tuple(state.key for state, _ in entries),
                        backlog=sum(backlog for _, backlog in entries),
                        queue_depth=shard.waiters,
                        fit_seconds_ewma=shard.fit_ewma,
                    )
                )
                for state, backlog in entries:
                    template_rows.append(
                        TemplateLoad(
                            key=state.key,
                            shard=shard.index,
                            fits=state.fits,
                            fit_seconds_ewma=state.fit_seconds_ewma,
                            backlog=backlog,
                        )
                    )
        return shard_rows, template_rows

    def shard_loads(self) -> list[ShardLoad]:
        """Per-shard load accounting snapshots (parent-side, no RPC)."""
        return self._load_rows()[0]

    def template_loads(self) -> list[TemplateLoad]:
        """Per-template load accounting snapshots (parent-side, no RPC)."""
        return self._load_rows()[1]

    # Introspection --------------------------------------------------------

    def rpc_counts(self) -> dict[str, int]:
        """Requests issued per RPC op since construction (``fit``,
        ``fit_many``, ``register``, ...).  The batching guarantees are
        asserted against these counters, never against timing."""
        with self._stats_lock:
            return dict(self._rpc_ops)

    @property
    def respawns(self) -> int:
        """How many dead/hung workers were replaced so far."""
        with self._stats_lock:
            return self._respawns

    def worker_pids(self) -> list[int | None]:
        return [
            None if shard.process is None else shard.process.pid
            for shard in tuple(self._shards)
        ]

    _DEAD_SHARD_STATS = {"pid": None, "templates": 0, "fits": 0, "engine_cache": None}

    def shard_stats(self) -> list[dict]:
        """Per-shard worker counters (pid, replica count, fits, cache),
        plus the parent-side load accounting: ``backlog`` (rows appended
        to the shard's templates since their last fit), ``routed`` (how
        many templates the routing table currently places here),
        ``queue_depth`` (threads waiting on this shard's RPC lane) and
        ``fit_ewma_ms`` (EWMA of one fit's parent-observed wall time) —
        the signals the flush watermarks and the rebalance policy read.

        Strictly read-only: a dead or unreachable worker reports the
        placeholder row instead of being respawned here — healing
        belongs to the serving path (the next fit RPC), not to
        introspection, so a monitoring poll never blocks on a
        full-history replay or perturbs the ``respawns`` counter.  The
        parent-side fields come from the authoritative histories and
        routing table, so they are reported even for a dead worker.
        """
        out = []
        for shard in tuple(self._shards):
            with shard.lock:
                backlog = sum(
                    self._templates[key].history.size - self._templates[key].synced
                    for key in shard.keys
                )
                routed = len(shard.keys)
                try:
                    row = dict(self._call_locked(shard, {"op": "stats"}))
                except (EstimationError, ValidationError):
                    row = dict(self._DEAD_SHARD_STATS)
            with self._stats_lock:
                row["backlog"] = backlog
                row["routed"] = routed
                row["queue_depth"] = shard.waiters
                row["fit_ewma_ms"] = (
                    None if shard.fit_ewma is None else shard.fit_ewma * 1000.0
                )
            out.append(row)
        return out

    def _engine_cache_stats(self) -> CacheStats | None:
        """Engine-cache counters summed across the shard workers."""
        caches = [
            shard_stat["engine_cache"]
            for shard_stat in self.shard_stats()
            if shard_stat["engine_cache"] is not None
        ]
        if not caches:
            return None
        return CacheStats(
            hits=sum(c.hits for c in caches),
            misses=sum(c.misses for c in caches),
            evictions=sum(c.evictions for c in caches),
            expirations=sum(c.expirations for c in caches),
            size=sum(c.size for c in caches),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedEstimationService(workers={self.workers}, "
            f"templates={len(self._templates)}, respawns={self.respawns})"
        )
