"""Shared-nothing sharded estimation serving (cross-process tenancy).

:class:`~repro.serving.service.EstimationService` scales across threads,
but its fits contend for one GIL and its engines live in one process.
:class:`ShardedEstimationService` keeps the exact same serving contract
— it *is* a :class:`~repro.serving.service.BaseEstimationService`, so
registration, per-template locks, version-keyed snapshots, burst
refresh and :class:`~repro.serving.service.ServiceStats` are literally
the shared skeleton — while moving every fit into a pool of shard
worker processes:

* **Hash partitioning.**  Template keys are assigned to shards by a
  stable CRC32 (never the salted built-in ``hash``), so the same key
  lands on the same shard across processes, restarts and replays.
* **Shared nothing.**  Each worker owns its own
  :class:`~repro.ires.modelling.Modelling`, estimation strategy,
  incremental DREAM engines and :class:`~repro.core.cache.ModelCache`
  (built from a picklable ``strategy_factory``); shards never share
  mutable state, so N shards fit on N cores with no GIL crosstalk.
* **Lazy row streaming.**  The parent keeps the authoritative
  histories; each fit RPC carries only the rows appended since the
  shard last saw that template.  At every fit point the replica is
  bitwise-identical to the parent history, which makes the workers
  oracle-equivalent to the in-process service.
* **Crash detection + deterministic replay.**  A dead or hung worker
  (``rpc_timeout``) is detected on the next RPC, respawned, and re-fed
  every one of its templates' full histories before the call is
  retried — the refit walks the identical window schedule, so
  predictions are unchanged (property-tested, including a forced
  mid-run crash).  Worker-*infrastructure* failures (a double crash, a
  replica desync, a hung RPC) surface as
  :class:`ShardedServingError` and are never silently swallowed by a
  burst, unlike a plain "history still too short" skip.
* **Graceful shutdown.**  :meth:`ShardedEstimationService.close` (or
  the context manager) drains the pool: polite ``shutdown`` RPC first,
  ``terminate`` as the backstop.  Workers are daemonic, so a dying
  parent never leaks them.

Predictions still run in the parent, lock-free, on the immutable
:class:`~repro.ires.modelling.FittedCostModel` snapshot each fit RPC
returns — estimation latency is identical to the in-process service;
only the (CPU-heavy) fitting crosses the process boundary.

See :mod:`repro.serving.worker` for the RPC message shapes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from typing import Callable

from repro.common.errors import EstimationError, ValidationError
from repro.core.cache import CacheStats
from repro.ires.modelling import EstimationStrategy, FittedCostModel, Modelling
from repro.serving.service import BaseEstimationService, _Template
from repro.serving.worker import PROTOCOL_VERSION, Row, worker_main

#: Default shard-pool width: one worker per core up to a small ceiling
#: (past the core count, extra processes only add IPC overhead).
DEFAULT_SHARD_WORKERS = max(2, min(8, os.cpu_count() or 2))


class ShardedServingError(EstimationError):
    """A shard worker failed in a way that is not a plain estimation or
    validation error (protocol desync, repeated crash, hung RPC, use
    after close).  Never swallowed by burst refreshes."""


class WorkerCrashError(ShardedServingError):
    """Internal signal: the shard's worker died or stopped answering.

    Raised by the low-level RPC layer and normally consumed by the
    respawn-and-retry path; it only escapes when the *respawned* worker
    fails again on the same call.
    """


def shard_of(key: str, workers: int) -> int:
    """Stable shard index of a template key (CRC32, not salted hash)."""
    return zlib.crc32(key.encode("utf-8")) % workers


class _Shard:
    """One worker process plus its pipe; ``lock`` serialises the shard's
    RPC traffic (one in-flight request per worker).  A template's
    ``synced`` replica cursor is read and written only under its
    shard's lock."""

    __slots__ = ("index", "process", "conn", "lock", "keys")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.lock = threading.RLock()
        self.keys: set[str] = set()


class ShardedEstimationService(BaseEstimationService):
    """Cross-process drop-in for :class:`EstimationService`.

    Parameters
    ----------
    strategy_factory:
        Picklable zero-argument callable building each worker's private
        :class:`~repro.ires.modelling.EstimationStrategy` (e.g.
        ``functools.partial(worker.strategy_from_config, config)`` or
        ``functools.partial(worker.dream_strategy, max_window=20)``).
        A factory rather than an instance: strategies hold locks and
        caches that must not cross the process boundary.
    workers:
        Shard count (>= 1); default :data:`DEFAULT_SHARD_WORKERS`.
    modelling:
        Optional parent-side registry to mirror registrations into, so
        an :class:`~repro.ires.platform.IReSPlatform` sharing it sees
        the same histories.  The parent never fits through it.
    max_workers:
        Width of the :meth:`refresh` fan-out thread pool (capped at the
        shard count; threads beyond one per shard cannot help because a
        shard answers one RPC at a time).
    rpc_timeout:
        Seconds to wait for a single worker reply before declaring the
        worker hung, terminating it, and respawning (``None`` = wait
        forever).  Configurable through
        ``FederationConfig(shard_rpc_timeout=...)``.
    """

    def __init__(
        self,
        strategy_factory: Callable[[], EstimationStrategy],
        workers: int | None = None,
        modelling: Modelling | None = None,
        max_workers: int | None = None,
        rpc_timeout: float | None = None,
        mp_context: str | None = None,
    ):
        super().__init__(max_workers=max_workers)
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if rpc_timeout is not None and not rpc_timeout > 0:
            raise ValidationError(f"rpc_timeout must be > 0, got {rpc_timeout}")
        self.workers = workers or DEFAULT_SHARD_WORKERS
        self.rpc_timeout = rpc_timeout
        self._strategy_factory = strategy_factory
        self._modelling = modelling
        methods = multiprocessing.get_all_start_methods()
        start = mp_context or ("fork" if "fork" in methods else "spawn")
        self._ctx = multiprocessing.get_context(start)
        self._respawns = 0
        self._rpc_ops: dict[str, int] = {}
        self._closed = False
        self._shards = [_Shard(index) for index in range(self.workers)]
        for shard in self._shards:
            self._start_worker(shard)

    # Worker lifecycle -------------------------------------------------------

    def _start_worker(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._strategy_factory),
            name=f"estimation-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        # The parent must drop its copy of the child end so a dead
        # worker shows up as EOF on this side of the pipe.
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn

    def _respawn_locked(self, shard: _Shard) -> None:
        """Replace a dead worker and replay its shard deterministically.

        Caller holds ``shard.lock``.  Every template assigned to the
        shard is re-registered and fed its *full* parent-side history,
        so the fresh replica's next fit walks the identical window
        schedule the dead worker would have.
        """
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
        if shard.process is not None and shard.process.is_alive():
            shard.process.terminate()
            shard.process.join(timeout=5)
        self._start_worker(shard)
        with self._stats_lock:
            self._respawns += 1
        for key in sorted(shard.keys):
            state = self._templates[key]
            rows = self._encode_rows(state, start=0)
            self._call_locked(
                shard,
                {
                    "op": "register",
                    "key": key,
                    "feature_names": state.history.feature_names,
                    "metrics": state.history.metric_names,
                },
            )
            if rows:
                self._call_locked(shard, {"op": "extend", "key": key, "rows": rows})
            state.synced = len(rows)

    def inject_worker_crash(self, index: int) -> None:
        """Hard-kill one shard's worker (test/bench hook).

        The next serving RPC that touches the shard detects the death,
        respawns the worker and replays its templates; this method only
        delivers the crash and waits for the process to die.
        """
        shard = self._shards[index]
        with shard.lock:
            try:
                shard.conn.send({"op": "crash"})
            except (BrokenPipeError, OSError):
                pass
            shard.process.join(timeout=10)

    def close(self, timeout: float = 5.0) -> None:
        """Drain the pool: polite shutdown RPC, terminate as backstop."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            with shard.lock:
                if shard.conn is not None:
                    try:
                        shard.conn.send({"op": "shutdown"})
                    except (BrokenPipeError, OSError):
                        pass
                if shard.process is not None:
                    shard.process.join(timeout=timeout)
                    if shard.process.is_alive():
                        shard.process.terminate()
                        shard.process.join(timeout=timeout)
                if shard.conn is not None:
                    try:
                        shard.conn.close()
                    except OSError:
                        pass
                    shard.conn = None

    def _ensure_open(self) -> None:
        with self._registry_lock:
            if self._closed:
                raise ShardedServingError("sharded service is closed")

    # RPC --------------------------------------------------------------------

    def _call_locked(self, shard: _Shard, message: dict):
        """One request/reply exchange; caller holds ``shard.lock``.

        Raises :class:`WorkerCrashError` when the worker is dead, the
        pipe broke, or ``rpc_timeout`` elapsed (the hung worker is
        terminated first so the retry starts from a clean respawn).
        """
        if self._closed or shard.conn is None:
            raise ShardedServingError("sharded service is closed")
        message.setdefault("v", PROTOCOL_VERSION)
        with self._stats_lock:
            self._rpc_ops[message["op"]] = self._rpc_ops.get(message["op"], 0) + 1
        try:
            shard.conn.send(message)
        except (BrokenPipeError, OSError, ValueError) as error:
            raise WorkerCrashError(
                f"shard {shard.index} worker is gone: {error}"
            ) from error
        deadline = None if self.rpc_timeout is None else time.monotonic() + self.rpc_timeout
        while True:
            try:
                if shard.conn.poll(0.05):
                    reply = shard.conn.recv()
                    break
            except (EOFError, OSError) as error:
                raise WorkerCrashError(
                    f"shard {shard.index} worker died mid-call"
                ) from error
            if not shard.process.is_alive() and not shard.conn.poll():
                raise WorkerCrashError(
                    f"shard {shard.index} worker exited with code "
                    f"{shard.process.exitcode}"
                )
            if deadline is not None and time.monotonic() > deadline:
                shard.process.terminate()
                shard.process.join(timeout=5)
                raise WorkerCrashError(
                    f"shard {shard.index} worker hung past "
                    f"rpc_timeout={self.rpc_timeout}s on {message['op']!r}"
                )
        if reply["ok"]:
            return reply["value"]
        kind, text = reply["kind"], reply["error"]
        if kind == "validation":
            error = ValidationError(text)
        elif kind == "estimation":
            error = EstimationError(text)
        else:
            error = ShardedServingError(f"shard {shard.index}: {text}")
        error.worker_reply = reply  # op-specific extras (e.g. "appended")
        raise error

    @staticmethod
    def _encode_rows(state: _Template, start: int) -> list[Row]:
        observations = state.history.observations
        return [
            (obs.tick, dict(obs.features), dict(obs.costs))
            for obs in observations[start:]
        ]

    # Registration -----------------------------------------------------------

    def shard_of(self, key: str) -> int:
        """The shard index serving ``key`` (stable across processes)."""
        return shard_of(key, self.workers)

    def _on_register(self, state: _Template) -> None:
        """Wire a fresh template to its shard.

        The key joins ``shard.keys`` *before* the register RPC, inside
        one shard-lock hold: if the worker crashes mid-registration the
        respawn replay already covers this template (the worker-side
        register is idempotent, so replay-then-nothing is fine), and a
        concurrent respawn can never run between the RPC and the
        bookkeeping.  Pre-existing history rows ride to the replica
        with the first fit.
        """
        if self._modelling is not None:
            self._modelling.register(state.key, state.history)
        shard = self._shards[self.shard_of(state.key)]
        message = {
            "op": "register",
            "key": state.key,
            "feature_names": state.history.feature_names,
            "metrics": state.history.metric_names,
        }
        with shard.lock:
            shard.keys.add(state.key)
            try:
                self._call_locked(shard, message)
            except WorkerCrashError:
                # The replay registers (and back-fills) this key too.
                self._respawn_locked(shard)

    # Fitting ------------------------------------------------------------

    def _fit_state(self, state: _Template) -> FittedCostModel:
        """Ship the unsynced rows and fit on the shard; caller holds the
        template lock.

        The delta is computed *under the shard lock* so it is always
        relative to what the replica actually holds — a respawn that
        replayed the full history in between resets ``synced`` before
        this runs, and the retry recomputes its delta after the replay.
        """
        shard = self._shards[self.shard_of(state.key)]
        with shard.lock:
            try:
                fitted = self._fit_locked(shard, state)
            except WorkerCrashError:
                self._respawn_locked(shard)
                fitted = self._fit_locked(shard, state)
        return fitted

    def _fit_locked(self, shard: _Shard, state: _Template) -> FittedCostModel:
        rows = self._encode_rows(state, start=state.synced)
        try:
            fitted = self._call_locked(
                shard,
                {
                    "op": "fit",
                    "key": state.key,
                    "rows": rows,
                    "expected_size": state.synced + len(rows),
                },
            )
        except WorkerCrashError:
            raise  # caller respawns; the replay resets the sync cursor
        except (ValidationError, EstimationError) as error:
            # The replica appended (part of) the delta before the fit
            # failed — a too-short history fails *after* its rows land.
            # Advance the cursor by exactly that amount or the next fit
            # would re-send the rows and corrupt the replica.
            state.synced += getattr(error, "worker_reply", {}).get("appended", 0)
            raise
        state.synced += len(rows)
        return fitted

    @staticmethod
    def _is_infrastructure_error(error: EstimationError) -> bool:
        """A broken shard must surface from a burst, not be skipped as
        "cannot fit yet" (which would silently serve stale snapshots)."""
        return isinstance(error, ShardedServingError)

    def _fit_stale(
        self, stale: list[str], parallel: bool
    ) -> dict[str, FittedCostModel | None]:
        """One parent thread per busy shard issues that shard's fit
        RPCs; the actual fitting runs in the worker processes, so a
        burst overlaps across cores with no GIL contention."""
        by_shard: dict[int, list[str]] = {}
        for key in stale:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        results: dict[str, FittedCostModel | None] = {}
        if parallel and len(by_shard) > 1:
            width = min(self.max_workers, len(by_shard))

            def fit_group(group: list[str]) -> list[tuple[str, FittedCostModel | None]]:
                return [(key, self._try_model(key)) for key in group]

            with ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="shard-burst"
            ) as pool:
                for fitted in pool.map(fit_group, by_shard.values()):
                    results.update(fitted)
        else:
            for key in stale:
                results[key] = self._try_model(key)
        return results

    def _fit_batch(
        self, stale: list[str]
    ) -> dict[str, FittedCostModel | EstimationError]:
        """One coalesced ``fit_many`` RPC per busy shard.

        The batch-first transport the front door flushes through: every
        shard receives its whole stale group (templates + row deltas) in
        a single pipe round-trip instead of one ``fit`` RPC per
        template.  Groups on different shards fan out across parent
        threads exactly like :meth:`_fit_stale` bursts.
        """
        by_shard: dict[int, list[str]] = {}
        for key in stale:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        groups = list(by_shard.values())
        outcomes: dict[str, FittedCostModel | EstimationError] = {}
        if len(groups) > 1:
            width = min(self.max_workers, len(groups))
            with ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="shard-batch"
            ) as pool:
                for fitted in pool.map(self._fit_group, groups):
                    outcomes.update(fitted)
        elif groups:
            outcomes.update(self._fit_group(groups[0]))
        return outcomes

    def _fit_group(
        self, keys: list[str]
    ) -> dict[str, FittedCostModel | EstimationError]:
        """Fit one shard's stale group through a single ``fit_many``.

        Lock order matches the single-call path (template lock, then
        shard lock); template locks are taken in sorted key order so two
        concurrent batches over the same shard can never deadlock each
        other.  Holding every template lock across the RPC keeps the
        captured history versions authoritative — an external append
        blocks until the batch's snapshots are installed.
        """
        keys = sorted(keys)
        states = [self._state(key) for key in keys]
        shard = self._shards[self.shard_of(keys[0])]
        outcomes: dict[str, FittedCostModel | EstimationError] = {}
        with ExitStack() as stack:
            for state in states:
                stack.enter_context(state.lock)
            with shard.lock:
                pending: list[tuple[_Template, int]] = []
                for state in states:
                    version = state.history.version
                    if (
                        state.snapshot is not None
                        and state.snapshot_version == version
                    ):
                        # Another thread refitted it since the stale
                        # scan; same snapshot hit model() would record.
                        outcomes[state.key] = state.snapshot
                        with self._stats_lock:
                            self._snapshot_hits += 1
                        continue
                    pending.append((state, version))
                if not pending:
                    return outcomes
                try:
                    replies = self._fit_many_locked(shard, pending)
                except WorkerCrashError:
                    # The replay resets every sync cursor; the retry
                    # recomputes its deltas against the fresh replica.
                    self._respawn_locked(shard)
                    replies = self._fit_many_locked(shard, pending)
                deferred: Exception | None = None
                for (state, version), reply in zip(pending, replies):
                    # Cursor math holds for success and failure alike:
                    # the worker reports what actually landed.
                    state.synced += reply.get("appended", 0)
                    if reply["ok"]:
                        state.snapshot = reply["value"]
                        state.snapshot_version = version
                        with self._stats_lock:
                            self._fits += 1
                        outcomes[state.key] = reply["value"]
                        continue
                    kind, text = reply["kind"], reply["error"]
                    if kind == "estimation":
                        # "Cannot fit yet" — isolated, never poisons
                        # the shard-mates.
                        outcomes[state.key] = EstimationError(text)
                    elif deferred is None:
                        # Validation/internal failures surface exactly
                        # as the single-call path raises them — but only
                        # after every reply's bookkeeping has landed.
                        if kind == "validation":
                            deferred = ValidationError(text)
                        else:
                            deferred = ShardedServingError(
                                f"shard {shard.index}: {text}"
                            )
                if deferred is not None:
                    raise deferred
        return outcomes

    def _fit_many_locked(
        self, shard: _Shard, pending: list[tuple[_Template, int]]
    ) -> list[dict]:
        """Issue one ``fit_many`` for the shard's pending group (caller
        holds the template locks and the shard lock)."""
        items = []
        for state, _version in pending:
            rows = self._encode_rows(state, start=state.synced)
            items.append(
                {
                    "key": state.key,
                    "rows": rows,
                    "expected_size": state.synced + len(rows),
                }
            )
        return self._call_locked(shard, {"op": "fit_many", "items": items})

    # Introspection --------------------------------------------------------

    def rpc_counts(self) -> dict[str, int]:
        """Requests issued per RPC op since construction (``fit``,
        ``fit_many``, ``register``, ...).  The batching guarantees are
        asserted against these counters, never against timing."""
        with self._stats_lock:
            return dict(self._rpc_ops)

    @property
    def respawns(self) -> int:
        """How many dead/hung workers were replaced so far."""
        with self._stats_lock:
            return self._respawns

    def worker_pids(self) -> list[int | None]:
        return [
            None if shard.process is None else shard.process.pid
            for shard in self._shards
        ]

    _DEAD_SHARD_STATS = {"pid": None, "templates": 0, "fits": 0, "engine_cache": None}

    def shard_stats(self) -> list[dict]:
        """Per-shard worker counters (pid, replica count, fits, cache),
        plus the parent-side ``backlog``: rows appended to the shard's
        templates since their last fit (the load signal the flush
        watermarks and future rebalancing read).

        Strictly read-only: a dead or unreachable worker reports the
        placeholder row instead of being respawned here — healing
        belongs to the serving path (the next fit RPC), not to
        introspection, so a monitoring poll never blocks on a
        full-history replay or perturbs the ``respawns`` counter.  The
        backlog comes from the authoritative parent histories, so it is
        reported even for a dead worker.
        """
        out = []
        for shard in self._shards:
            with shard.lock:
                backlog = sum(
                    self._templates[key].history.size - self._templates[key].synced
                    for key in shard.keys
                )
                try:
                    row = dict(self._call_locked(shard, {"op": "stats"}))
                except (EstimationError, ValidationError):
                    row = dict(self._DEAD_SHARD_STATS)
                row["backlog"] = backlog
                out.append(row)
        return out

    def _engine_cache_stats(self) -> CacheStats | None:
        """Engine-cache counters summed across the shard workers."""
        caches = [
            shard_stat["engine_cache"]
            for shard_stat in self.shard_stats()
            if shard_stat["engine_cache"] is not None
        ]
        if not caches:
            return None
        return CacheStats(
            hits=sum(c.hits for c in caches),
            misses=sum(c.misses for c in caches),
            evictions=sum(c.evictions for c in caches),
            expirations=sum(c.expirations for c in caches),
            size=sum(c.size for c in caches),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedEstimationService(workers={self.workers}, "
            f"templates={len(self._templates)}, respawns={self.respawns})"
        )
