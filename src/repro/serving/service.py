"""The multi-tenant estimation service (see the package docstring).

Lock discipline, from coarse to fine:

* ``_registry_lock`` — guards the template table only (register /
  lookup).  Never held while fitting.
* per-template ``lock`` — serialises *that* template's mutations: a
  history append (:meth:`BaseEstimationService.record`) and a model
  refit (:meth:`BaseEstimationService.model`) on the same template
  exclude each other, so a fit can never observe a torn window.
  Different templates have different locks and never block each other.
* ``_stats_lock`` — a leaf lock around the service counters.

Fitted models are immutable snapshots keyed by the history's version
counter: predictions (:meth:`BaseEstimationService.estimate`) run
entirely outside the locks on whatever snapshot was current when they
started, which is exactly the "estimates are as-of the latest fit"
semantics a serving layer wants.

:class:`BaseEstimationService` carries this whole contract —
registration, ingest, snapshot bookkeeping, burst refresh, counters —
and leaves only the *fit transport* to subclasses:
:class:`EstimationService` fits in-process through a shared
:class:`~repro.ires.modelling.Modelling`, the cross-process
:class:`~repro.serving.sharded.ShardedEstimationService` ships the fit
to a shard worker.  Sharing the skeleton is what keeps the two
backends oracle-equivalent by construction.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.errors import EstimationError, ValidationError
from repro.core.cache import CacheStats
from repro.core.history import ExecutionHistory
from repro.serving.topology import LOAD_EWMA_ALPHA
from repro.ires.modelling import (
    DreamStrategy,
    EstimationStrategy,
    FittedCostModel,
    Modelling,
)

#: Upper bound on burst-refresh worker threads.  The RLS/PRESS path is
#: NumPy-matmul heavy (the GIL is released inside the C kernels), but
#: far past the core count the threads only add contention.
DEFAULT_MAX_WORKERS = 8


@dataclass(frozen=True)
class ServiceStats:
    """A consistent snapshot of the service counters."""

    templates: int
    #: Strategy fits actually executed (snapshot misses).
    fits: int
    #: Model lookups served from a fresh per-version snapshot.
    snapshot_hits: int
    #: Observations appended through :meth:`BaseEstimationService.record`
    #: or counted by :meth:`BaseEstimationService.record_external` (the
    #: platform executor's history appends); raw appends on a bare
    #: history object outside both paths still bypass this counter.
    observations: int
    #: ``refresh`` calls, and how many stale fits they attempted.
    bursts: int
    burst_fits: int
    #: Engine-cache counters when the strategy exposes a ModelCache.
    engine_cache: CacheStats | None = None
    #: ``refresh_batch`` calls, and how many stale fits they grouped
    #: (the sharded backend ships each group as one ``fit_many`` RPC
    #: per shard instead of one ``fit`` RPC per template).
    batch_refreshes: int = 0
    batch_fits: int = 0


@dataclass(frozen=True)
class BatchRefreshResult:
    """Outcome of one :meth:`BaseEstimationService.refresh_batch`.

    Per-template error isolation: a tenant whose history is still too
    short (or whose fit failed for any non-infrastructure reason) lands
    in :attr:`errors` instead of poisoning the batch — every other
    requested template still gets its model.  Backend-infrastructure
    failures (a broken shard) are raised, never recorded.
    """

    #: Current model per requested template that has one.
    models: dict[str, FittedCostModel]
    #: Typed failure per requested template that could not be fitted.
    errors: dict[str, EstimationError]
    #: The stale subset that was actually (re)fitted, sorted.
    fitted: tuple[str, ...]


class _Template:
    """Per-tenant state: history + lock + versioned model snapshot.

    ``synced`` is the sharded backend's replica cursor (how many history
    rows its shard worker has been fed); the in-process service never
    touches it.  ``fits`` / ``fit_seconds_ewma`` are the template's load
    accounting (lifetime fit count and an EWMA of one fit's wall time,
    guarded by the service's ``_stats_lock``) — the per-template heat
    signal the rebalance policy ranks hot tenants by.
    """

    __slots__ = (
        "key",
        "history",
        "lock",
        "snapshot",
        "snapshot_version",
        "synced",
        "fits",
        "fit_seconds_ewma",
    )

    def __init__(self, key: str, history: ExecutionHistory):
        self.key = key
        self.history = history
        self.lock = threading.RLock()
        self.snapshot: FittedCostModel | None = None
        self.snapshot_version: int | None = None
        self.synced = 0
        self.fits = 0
        self.fit_seconds_ewma: float | None = None


class BaseEstimationService(ABC):
    """The serving contract, minus the fit transport.

    Subclasses implement :meth:`_fit_state` (produce a fitted model for
    one template, template lock held) and :meth:`_fit_stale` (fan a
    burst of stale fits out), plus the :meth:`_on_register` /
    :meth:`_engine_cache_stats` / :meth:`close` hooks.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or DEFAULT_MAX_WORKERS
        self._templates: dict[str, _Template] = {}
        self._registry_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._fits = 0
        self._snapshot_hits = 0
        self._observations = 0
        self._bursts = 0
        self._burst_fits = 0
        self._batch_refreshes = 0
        self._batch_fits = 0
        #: Optional observer ``(key, history_version)`` invoked after
        #: every successful strategy fit (any backend, any fit path) —
        #: the durability plane journals fit freshness through it so
        #: recovery can re-warm exactly the snapshots that were fresh.
        self.on_fit: Callable[[str, int], None] | None = None

    # Subclass hooks -------------------------------------------------------

    @abstractmethod
    def _fit_state(self, state: _Template) -> FittedCostModel:
        """Fit one template's current history (template lock held)."""

    @abstractmethod
    def _fit_stale(
        self, stale: list[str], parallel: bool
    ) -> dict[str, FittedCostModel | None]:
        """Fit a burst of stale templates, possibly concurrently."""

    def _note_template_fit(self, state: _Template, seconds: float) -> None:
        """Fold one successful fit's wall time into the template's load
        accounting (any thread; takes the stats lock)."""
        with self._stats_lock:
            state.fits += 1
            if state.fit_seconds_ewma is None:
                state.fit_seconds_ewma = seconds
            else:
                state.fit_seconds_ewma = (
                    LOAD_EWMA_ALPHA * seconds
                    + (1.0 - LOAD_EWMA_ALPHA) * state.fit_seconds_ewma
                )
        # Observer fires outside the stats lock (it may take the
        # durability manager's lock; keep the leaf lock a leaf).
        if self.on_fit is not None:
            self.on_fit(state.key, state.history.version)

    def _on_register(self, state: _Template) -> None:
        """Wire a freshly registered template into the backend."""

    def _engine_cache_stats(self) -> CacheStats | None:
        return None

    def _ensure_open(self) -> None:
        """Raise if the service can no longer accept work."""

    # Lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (a no-op for the in-process
        service; the sharded backend drains its worker processes)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Registration ---------------------------------------------------------

    def register(
        self,
        key: str,
        history: ExecutionHistory | None = None,
        *,
        feature_names: tuple[str, ...] | None = None,
        metrics: tuple[str, ...] = ("time", "money"),
    ) -> ExecutionHistory:
        """Register a template, creating its history unless one is given."""
        self._ensure_open()
        if history is None:
            if feature_names is None:
                raise ValidationError(
                    "register() needs either a history or feature_names"
                )
            history = ExecutionHistory(feature_names, metrics)
        state = _Template(key, history)
        with self._registry_lock:
            if key in self._templates:
                raise ValidationError(f"template {key!r} already registered")
            self._templates[key] = state
        self._on_register(state)
        return history

    def keys(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._templates)

    def history(self, key: str) -> ExecutionHistory:
        return self._state(key).history

    def template_lock(self, key: str) -> threading.RLock:
        """The template's lock, for callers that mutate its history
        outside :meth:`record` (e.g. the platform's executor logging a
        measured run).  Holding it excludes that template's fits — the
        torn-window guarantee extends to external appends — while other
        templates stay unaffected."""
        return self._state(key).lock

    def _state(self, key: str) -> _Template:
        with self._registry_lock:
            try:
                return self._templates[key]
            except KeyError:
                known = ", ".join(sorted(self._templates)) or "<none>"
                raise EstimationError(
                    f"no template registered for {key!r}; have: {known}"
                ) from None

    # Ingest ---------------------------------------------------------------

    def record(
        self, key: str, tick: int, features: dict[str, float], costs: dict[str, float]
    ) -> None:
        """Append one measured execution to the template's history.

        Holds only that template's lock: a tick on one tenant never
        blocks estimation (or ticks) on another.
        """
        state = self._state(key)
        with state.lock:
            state.history.append(tick, features, costs)
        with self._stats_lock:
            self._observations += 1

    def record_external(self, count: int = 1) -> None:
        """Count observations appended outside :meth:`record`.

        The platform's executor logs measured runs directly into the
        history (under the template's lock); it reports them here so the
        ``observations`` counter stays meaningful for every serving path.
        """
        with self._stats_lock:
            self._observations += count

    # Fitting --------------------------------------------------------------

    def model(self, key: str) -> FittedCostModel:
        """The template's fitted cost model, refit only when stale."""
        state = self._state(key)
        with state.lock:
            version = state.history.version
            if state.snapshot is not None and state.snapshot_version == version:
                with self._stats_lock:
                    self._snapshot_hits += 1
                return state.snapshot
            started = time.perf_counter()
            fitted = self._fit_state(state)
            self._note_template_fit(state, time.perf_counter() - started)
            state.snapshot = fitted
            state.snapshot_version = version
            with self._stats_lock:
                self._fits += 1
            return fitted

    def is_stale(self, key: str) -> bool:
        state = self._state(key)
        with state.lock:
            return (
                state.snapshot is None
                or state.snapshot_version != state.history.version
            )

    def stale_keys(self) -> list[str]:
        return [key for key in self.keys() if self.is_stale(key)]

    def _try_model(self, key: str) -> FittedCostModel | None:
        """``model()``, or None when the template cannot be fitted yet
        (e.g. its history is still shorter than the minimum window).
        Backend-infrastructure failures are never swallowed here."""
        try:
            return self.model(key)
        except EstimationError as error:
            if self._is_infrastructure_error(error):
                raise
            return None

    @staticmethod
    def _is_infrastructure_error(error: EstimationError) -> bool:
        """Distinguish "cannot fit yet" (omit from a burst) from "the
        backend itself broke" (must surface).  The in-process service
        has no infrastructure to break."""
        return False

    def refresh(
        self, keys: list[str] | None = None, parallel: bool = True
    ) -> dict[str, FittedCostModel]:
        """Fit every stale template (a submission burst), concurrently.

        Per-template histories are independent, so stale fits fan out
        through the backend's :meth:`_fit_stale`.  Returns the current
        model for every requested key that has one; tenants that cannot
        be fitted yet (too little history) are omitted rather than
        poisoning the burst for the healthy tenants.
        """
        requested = self.keys() if keys is None else list(keys)
        stale = [key for key in requested if self.is_stale(key)]
        results = self._fit_stale(stale, parallel)
        for key in requested:
            if key not in results:
                results[key] = self._try_model(key)
        with self._stats_lock:
            self._bursts += 1
            self._burst_fits += len(stale)
        return {key: model for key, model in results.items() if model is not None}

    def _fit_batch(
        self, stale: list[str]
    ) -> dict[str, FittedCostModel | EstimationError]:
        """Fit a coalesced group of stale templates in one backend call.

        The base implementation fits sequentially through :meth:`model`
        (the in-process service has no round-trip to amortise); the
        sharded backend overrides this with one ``fit_many`` RPC per
        shard.  Per-template failures are *returned*, not raised —
        infrastructure failures are re-raised, never recorded.
        """
        outcomes: dict[str, FittedCostModel | EstimationError] = {}
        for key in stale:
            try:
                outcomes[key] = self.model(key)
            except EstimationError as error:
                if self._is_infrastructure_error(error):
                    raise
                outcomes[key] = error
        return outcomes

    def refresh_batch(self, keys: list[str] | None = None) -> BatchRefreshResult:
        """Bring a group of templates up to date in one coalesced call.

        The batch-first sibling of :meth:`refresh`: instead of N
        independent stale fits it hands the whole stale subset to the
        backend's :meth:`_fit_batch` (one grouped transport call where
        the backend has one), and instead of silently omitting tenants
        that cannot be fitted it returns their typed errors alongside
        the healthy models.  Fresh templates resolve through
        :meth:`model` and count as snapshot hits, exactly as the
        single-call path would.
        """
        requested = self.keys() if keys is None else list(keys)
        stale = [key for key in requested if self.is_stale(key)]
        outcomes = self._fit_batch(stale)
        models: dict[str, FittedCostModel] = {}
        errors: dict[str, EstimationError] = {}
        for key in requested:
            outcome = outcomes.get(key)
            if outcome is None:
                try:
                    outcome = self.model(key)
                except EstimationError as error:
                    if self._is_infrastructure_error(error):
                        raise
                    outcome = error
            if isinstance(outcome, EstimationError):
                errors[key] = outcome
            else:
                models[key] = outcome
        with self._stats_lock:
            self._batch_refreshes += 1
            self._batch_fits += len(stale)
        return BatchRefreshResult(
            models=models, errors=errors, fitted=tuple(sorted(stale))
        )

    # Estimation -----------------------------------------------------------

    def estimate(self, key: str, features) -> dict[str, float]:
        """Predicted cost vector for one candidate's features."""
        return self.model(key).predict(features)

    def estimate_batch(self, key: str, features_matrix) -> dict[str, np.ndarray]:
        """Predicted cost vectors for a whole candidate set (one matmul
        per metric, outside every lock)."""
        return self.model(key).predict_batch(features_matrix)

    # Introspection --------------------------------------------------------

    @property
    def stats(self) -> ServiceStats:
        engine_cache = self._engine_cache_stats()
        with self._stats_lock:
            return ServiceStats(
                templates=len(self._templates),
                fits=self._fits,
                snapshot_hits=self._snapshot_hits,
                observations=self._observations,
                bursts=self._bursts,
                burst_fits=self._burst_fits,
                engine_cache=engine_cache,
                batch_refreshes=self._batch_refreshes,
                batch_fits=self._batch_fits,
            )


class EstimationService(BaseEstimationService):
    """Concurrent in-process front for
    :class:`~repro.ires.modelling.Modelling`.

    Parameters
    ----------
    strategy:
        The estimation strategy shared by all templates (default: an
        incremental :class:`~repro.ires.modelling.DreamStrategy`).
        Ignored when ``modelling`` is given.
    modelling:
        An existing Modelling registry to front (the IReS platform hands
        its own in, so platform and service see the same histories).
    max_workers:
        Thread-pool width for :meth:`refresh` bursts.
    """

    def __init__(
        self,
        strategy: EstimationStrategy | None = None,
        modelling: Modelling | None = None,
        max_workers: int | None = None,
    ):
        super().__init__(max_workers=max_workers)
        if modelling is not None:
            self._modelling = modelling
        else:
            self._modelling = Modelling(strategy or DreamStrategy())

    @property
    def strategy(self) -> EstimationStrategy:
        return self._modelling.strategy

    def _on_register(self, state: _Template) -> None:
        # Registers in Modelling too: platform and service share state.
        self._modelling.register(state.key, state.history)

    def _fit_state(self, state: _Template) -> FittedCostModel:
        return self._modelling.fit(state.key)

    def _fit_stale(
        self, stale: list[str], parallel: bool
    ) -> dict[str, FittedCostModel | None]:
        """NumPy releases the GIL inside the matmul-heavy RLS path, so
        bursts overlap on a thread pool on multicore hosts."""
        if parallel and len(stale) > 1:
            width = min(self.max_workers, len(stale))
            with ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="estimation-burst"
            ) as pool:
                futures = {key: pool.submit(self._try_model, key) for key in stale}
                return {key: future.result() for key, future in futures.items()}
        return {key: self._try_model(key) for key in stale}

    def _engine_cache_stats(self) -> CacheStats | None:
        engine_cache = getattr(self.strategy, "engine_cache", None)
        return None if engine_cache is None else engine_cache.stats

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats
        return (
            f"EstimationService(templates={s.templates}, fits={s.fits}, "
            f"snapshot_hits={s.snapshot_hits}, bursts={s.bursts})"
        )
