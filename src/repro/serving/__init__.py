"""Multi-tenant estimation serving (the MIDAS federation front).

The paper evaluates DREAM one query template at a time, but the
federation it targets serves many hospitals' templates simultaneously.
This package adds the serving layer on top of
:class:`~repro.ires.modelling.Modelling`:

**Tenancy model.**  A *tenant* is one registered query template (one
hospital's recurring query shape).  Each tenant owns

* an append-only :class:`~repro.core.history.ExecutionHistory` — never
  shared, so tenants cannot leak observations into each other's models;
* a per-template lock — a tick (history append) and a refit on the same
  template exclude each other, so no fit ever sees a torn window, while
  ticks and estimates on *different* templates never contend;
* an immutable fitted-model snapshot keyed by the history's version
  counter — estimates run lock-free on the snapshot, and a snapshot is
  refit only when its history has actually changed.

**Shared, bounded machinery.**  What tenants *do* share is the
estimation strategy and its engine budget: the incremental DREAM
engines live in one :class:`~repro.core.cache.ModelCache` (LRU +
idle-TTL, exact hit/miss/eviction counters), so a long-running
deployment with thousands of registered templates keeps engines only
for the hot ones.  Eviction is safe — an engine is derived state and
refits from its history to the identical window and predictions.

**Bursts.**  A submission burst touches many templates at once;
:meth:`~repro.serving.service.EstimationService.refresh` fits all stale
templates concurrently on a thread pool (per-template histories are
independent, and NumPy releases the GIL inside the matmul-heavy
RLS/PRESS path), then serves every estimate from the refreshed
snapshots.  ``benchmarks/bench_serving_burst.py`` measures the burst
latency against sequential seed-path fitting.

**Cross-process sharding.**  Past the GIL, the
:class:`~repro.serving.sharded.ShardedEstimationService` keeps the same
serving contract but hash-partitions templates across a shared-nothing
pool of worker *processes* (one private strategy + engine cache each),
streaming history rows over a pickle-safe pipe RPC
(:mod:`repro.serving.worker`) with crash detection and deterministic
replay-on-respawn.  ``benchmarks/bench_sharded_serving.py`` measures
burst throughput against the thread-pool service.
"""

from repro.core.cache import CacheStats, ModelCache
from repro.serving.service import (
    DEFAULT_MAX_WORKERS,
    BaseEstimationService,
    BatchRefreshResult,
    EstimationService,
    ServiceStats,
)
from repro.serving.sharded import (
    DEFAULT_SHARD_WORKERS,
    ShardedEstimationService,
    ShardedServingError,
    StaleRouteError,
    shard_of,
)
from repro.serving.topology import (
    Migration,
    RebalanceConfig,
    RebalanceOutcome,
    RebalancePlan,
    RebalancePolicy,
    ShardLoad,
    TemplateLoad,
)
from repro.serving.worker import PROTOCOL_VERSION

__all__ = [
    "BaseEstimationService",
    "BatchRefreshResult",
    "CacheStats",
    "ModelCache",
    "DEFAULT_MAX_WORKERS",
    "DEFAULT_SHARD_WORKERS",
    "EstimationService",
    "Migration",
    "PROTOCOL_VERSION",
    "RebalanceConfig",
    "RebalanceOutcome",
    "RebalancePlan",
    "RebalancePolicy",
    "ServiceStats",
    "ShardLoad",
    "ShardedEstimationService",
    "ShardedServingError",
    "StaleRouteError",
    "TemplateLoad",
    "shard_of",
]
