"""repro — reproduction of "Dynamic estimation for medical data management
in a cloud federation" (Le, Kantere, d'Orazio; DARLI-AP @ EDBT/ICDT 2019).

Public API, top-down:

* :class:`repro.midas.MidasSystem` — the full system of Figure 1.
* :class:`repro.ires.IReSPlatform` — the multi-engine platform pipeline.
* :class:`repro.core.DreamEstimator` — DREAM, Algorithm 1.
* :mod:`repro.experiments` — one driver per paper table/figure.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.core import DreamEstimator, DreamResult, ExecutionHistory, MultiCostModel
from repro.ires import IReSPlatform, UserPolicy
from repro.midas import MidasSystem

__version__ = "1.0.0"

__all__ = [
    "DreamEstimator",
    "DreamResult",
    "ExecutionHistory",
    "MultiCostModel",
    "IReSPlatform",
    "UserPolicy",
    "MidasSystem",
    "__version__",
]
