"""repro — reproduction of "Dynamic estimation for medical data management
in a cloud federation" (Le, Kantere, d'Orazio; DARLI-AP @ EDBT/ICDT 2019).

Public API, top-down:

* :class:`repro.federation.FederationGateway` — THE entry surface: typed
  envelopes, pinned sessions, pluggable estimation backends.
* :class:`repro.midas.MidasSystem` — the full system of Figure 1 (builds
  the medical environment and hands you its gateway).
* :class:`repro.core.DreamEstimator` — DREAM, Algorithm 1.
* :mod:`repro.experiments` — one driver per paper table/figure.

The engine room (:class:`repro.ires.IReSPlatform`, the serving layer) is
importable for white-box work but constructed only by the gateway.

See README.md for a tour.
"""

from repro.core import DreamEstimator, DreamResult, ExecutionHistory, MultiCostModel
from repro.federation import (
    FederationConfig,
    FederationGateway,
    ObserveRequest,
    SubmitRequest,
)
from repro.ires import IReSPlatform, UserPolicy
from repro.midas import MidasSystem

__version__ = "1.1.0"

__all__ = [
    "DreamEstimator",
    "DreamResult",
    "ExecutionHistory",
    "MultiCostModel",
    "FederationConfig",
    "FederationGateway",
    "ObserveRequest",
    "SubmitRequest",
    "IReSPlatform",
    "UserPolicy",
    "MidasSystem",
    "__version__",
]
