"""Governance plane for the medical cloud federation.

Three pieces, mirroring the regulatory layer every deployed medical
federation carries in front of its query engine:

* :mod:`repro.governance.identity` — :class:`Principal`, the typed
  tenant identity (role, site affiliation, purpose-of-use) a request
  runs on behalf of;
* :mod:`repro.governance.policy` — declarative :class:`DataPolicy`
  rules per ``(dataset, site)`` compiled by the :class:`PolicyEngine`
  into :class:`PlanConstraint` objects the QEP enumerator applies while
  building the candidate space;
* :mod:`repro.governance.audit` — the hash-chained append-only
  :class:`AuditLog` of every envelope the gateway acts on, verifiable
  with :func:`verify_chain`.

The package is self-contained (it imports only ``repro.common``): the
federation gateway consumes it, never the other way round.
"""

from repro.governance.audit import (
    GENESIS_HASH,
    AuditLog,
    AuditRecord,
    export_chain,
    record_hash,
    verify_chain,
    verify_chain_file,
)
from repro.governance.identity import Principal
from repro.governance.policy import (
    DataPolicy,
    GovernanceConfig,
    PlanConstraint,
    PolicyEngine,
)

__all__ = [
    "GENESIS_HASH",
    "AuditLog",
    "AuditRecord",
    "DataPolicy",
    "GovernanceConfig",
    "PlanConstraint",
    "PolicyEngine",
    "Principal",
    "export_chain",
    "record_hash",
    "verify_chain",
    "verify_chain_file",
]
