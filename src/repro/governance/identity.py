"""Tenant identity: who a request runs on behalf of.

The source paper manages *medical* data across a cloud federation, and
every related system (federated-identity PHR/EHR sharing, HERON's
regulatory gate in front of i2b2) attaches a typed identity to each
request before any data moves.  :class:`Principal` is that identity for
the gateway: a stable subject id plus the three attributes the policy
engine dispatches on — role, site affiliation, and purpose-of-use.

A ``Principal`` rides on the request envelopes
(``SubmitRequest(principal=...)``, ``ObserveRequest(principal=...)``)
and is validated eagerly at construction like every other config value:
garbage fails here, not deep inside a flush.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError


def _checked_attribute(name: str, value: str) -> str:
    if not value or not isinstance(value, str):
        raise ValidationError(
            f"Principal.{name} must be a non-empty string, got {value!r}"
        )
    return value.strip().lower()


@dataclass(frozen=True)
class Principal:
    """One authenticated tenant identity with typed attributes.

    Parameters
    ----------
    subject:
        Stable identifier of the caller (a user id, a service account).
        Kept verbatim; it names the actor in audit records.
    role:
        Functional role (``"clinician"``, ``"researcher"``, ``"admin"``,
        ...).  Policy rules may scope themselves to roles.
    site:
        Home site affiliation within the federation (e.g.
        ``"cloud-a"``).  Normalised to lower case like every site name
        in the deployment.
    purpose:
        Purpose-of-use the request is made under (``"treatment"``,
        ``"research"``, ``"billing"``, ...) — the attribute medical
        data-sharing regulation keys on.
    """

    subject: str
    role: str
    site: str
    purpose: str = "treatment"

    def __post_init__(self):
        if not self.subject or not isinstance(self.subject, str):
            raise ValidationError(
                f"Principal.subject must be a non-empty string, got {self.subject!r}"
            )
        object.__setattr__(self, "role", _checked_attribute("role", self.role))
        object.__setattr__(self, "site", _checked_attribute("site", self.site))
        object.__setattr__(
            self, "purpose", _checked_attribute("purpose", self.purpose)
        )

    def describe(self) -> str:
        return (
            f"{self.subject} (role={self.role}, site={self.site}, "
            f"purpose={self.purpose})"
        )
