"""Site-level data-access policy: declarative rules, compiled constraints.

The unit of governance is a :class:`DataPolicy` rule per
``(dataset, site)`` pair, optionally scoped to principal roles and
purposes-of-use.  Two effects exist:

* ``"restricted"`` — raw rows of the dataset may not *leave* the site:
  any admissible QEP must execute **at** that site, so the only edge
  crossing out of it carries the (aggregate) result set, never base
  rows.  Data may still ship *into* the restricted site from elsewhere.
* ``"deny"`` — the pair is excluded outright.  A deny on a dataset at
  its storage site makes every query over that dataset inadmissible for
  the matched principals; a wildcard-dataset deny on a site excludes the
  site from plans entirely (no execution there, nothing read from it).

Rules are *compiled* per request into a :class:`PlanConstraint` —
a required-site set, an excluded-site set, and any fatal rules — which
the QEP enumerator applies while building the candidate space, so the
optimizer never even costs a forbidden plan.  The default is
**allow**: a :class:`GovernanceConfig` with no rules constrains nothing
(and is bitwise-equivalent to running without a governance plane, which
is the subsystem's equivalence gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import ValidationError
from repro.governance.identity import Principal

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.ires.deployment import Deployment

#: Rule effects, in increasing severity.
EFFECTS = ("restricted", "deny")

#: Wildcard matching any dataset or any site in a rule.
WILDCARD = "*"


def _checked_name(label: str, value: str) -> str:
    if not value or not isinstance(value, str):
        raise ValidationError(
            f"DataPolicy.{label} must be a non-empty name or '*', got {value!r}"
        )
    return value.strip().lower()


def _checked_scope(label: str, values) -> tuple[str, ...] | None:
    if values is None:
        return None
    out = tuple(str(v).strip().lower() for v in values)
    if not out or any(not v for v in out):
        raise ValidationError(
            f"DataPolicy.{label} must be None or a non-empty tuple of "
            f"non-empty names, got {values!r}"
        )
    return out


@dataclass(frozen=True)
class DataPolicy:
    """One declarative rule over a ``(dataset, site)`` pair.

    Parameters
    ----------
    dataset:
        Table name the rule governs, or ``"*"`` for every dataset.
    site:
        Federation site the rule anchors to, or ``"*"`` for every site.
    effect:
        ``"restricted"`` (raw rows may not leave the site) or ``"deny"``
        (the pair is excluded from planning entirely).
    roles / purposes:
        Principal scope: the rule applies only to principals whose role
        / purpose-of-use is listed.  ``None`` (the default) applies to
        every principal, including anonymous requests.  A scoped rule
        never matches an anonymous request — scoping expresses "this
        class of identified callers", not "everyone".
    rule_id:
        Stable identifier carried into policy-violation errors and audit
        records.  Auto-derived from the rule when left empty; must be
        unique within one :class:`GovernanceConfig`.
    """

    dataset: str
    site: str
    effect: str
    roles: tuple[str, ...] | None = None
    purposes: tuple[str, ...] | None = None
    rule_id: str = ""

    def __post_init__(self):
        object.__setattr__(self, "dataset", _checked_name("dataset", self.dataset))
        object.__setattr__(self, "site", _checked_name("site", self.site))
        if self.effect not in EFFECTS:
            raise ValidationError(
                f"DataPolicy.effect must be one of {EFFECTS}, got {self.effect!r}"
            )
        object.__setattr__(self, "roles", _checked_scope("roles", self.roles))
        object.__setattr__(self, "purposes", _checked_scope("purposes", self.purposes))
        if self.site == WILDCARD and self.effect == "restricted":
            raise ValidationError(
                "DataPolicy: effect='restricted' needs a concrete site — "
                "'raw rows may not leave every site at once' admits no plan; "
                "use effect='deny' to exclude a dataset outright"
            )
        if not self.rule_id:
            scope = ""
            if self.roles is not None:
                scope += f"|roles={','.join(self.roles)}"
            if self.purposes is not None:
                scope += f"|purposes={','.join(self.purposes)}"
            object.__setattr__(
                self, "rule_id", f"{self.effect}:{self.dataset}@{self.site}{scope}"
            )
        elif not isinstance(self.rule_id, str):
            raise ValidationError(
                f"DataPolicy.rule_id must be a string, got {self.rule_id!r}"
            )

    def applies_to(self, principal: Principal | None) -> bool:
        """Whether the rule's principal scope matches the caller."""
        if self.roles is None and self.purposes is None:
            return True
        if principal is None:
            # A scoped rule names a class of *identified* callers.
            return False
        if self.roles is not None and principal.role not in self.roles:
            return False
        if self.purposes is not None and principal.purpose not in self.purposes:
            return False
        return True

    def matches(self, dataset: str, site: str) -> bool:
        """Whether the rule governs this concrete ``(dataset, site)``."""
        return (self.dataset in (WILDCARD, dataset.lower())) and (
            self.site in (WILDCARD, site.lower())
        )

    def describe(self) -> str:
        scope = ""
        if self.roles is not None:
            scope += f" roles={','.join(self.roles)}"
        if self.purposes is not None:
            scope += f" purposes={','.join(self.purposes)}"
        return f"{self.effect}({self.dataset} @ {self.site}){scope}"


@dataclass(frozen=True)
class GovernanceConfig:
    """Everything the gateway's governance plane needs, validated eagerly.

    Parameters
    ----------
    policies:
        The active :class:`DataPolicy` rules.  Empty (the default) means
        a *permissive* plane: identity and audit machinery run, nothing
        is constrained — and the pipeline output is bitwise-identical to
        running with no governance at all.
    require_identity:
        When True, every submit/observe envelope must carry a
        :class:`~repro.governance.identity.Principal`; anonymous
        requests are denied with a typed
        :class:`~repro.federation.errors.PolicyViolationError`
        (rule id ``"identity-required"``).
    audit:
        Whether the gateway keeps the hash-chained append-only
        :class:`~repro.governance.audit.AuditLog` of envelope traffic.
    """

    policies: tuple[DataPolicy, ...] = ()
    require_identity: bool = False
    audit: bool = True

    def __post_init__(self):
        object.__setattr__(self, "policies", tuple(self.policies))
        seen: set[str] = set()
        for rule in self.policies:
            if not isinstance(rule, DataPolicy):
                raise ValidationError(
                    f"GovernanceConfig.policies must contain DataPolicy rules, "
                    f"got {type(rule).__name__}"
                )
            if rule.rule_id in seen:
                raise ValidationError(
                    f"GovernanceConfig: duplicate rule_id {rule.rule_id!r}; "
                    "give one of the rules an explicit distinct rule_id"
                )
            seen.add(rule.rule_id)

    @property
    def permissive(self) -> bool:
        """True when no rule can ever constrain a plan."""
        return not self.policies and not self.require_identity


@dataclass(frozen=True)
class PlanConstraint:
    """A compiled, per-request view of the active rules.

    Produced by :meth:`PolicyEngine.constraint_for` for one
    ``(principal, query tables)`` pair; consumed by the QEP enumerator
    (``permits`` per candidate execution site) and by the gateway's
    zero-admissible-plan diagnostics (``rule_ids``).
    """

    #: Sites the execution *must* run at (restricted datasets pin their
    #: storage site).  More than one required site means no plan exists.
    required_sites: frozenset[str] = frozenset()
    #: Sites the execution may *not* run at (wildcard-dataset denials).
    excluded_sites: frozenset[str] = frozenset()
    #: Rules that make the whole query inadmissible regardless of the
    #: execution site (a denied dataset at its storage site).
    fatal: tuple[DataPolicy, ...] = ()
    #: Every rule that shaped this constraint (fatal ones included).
    applied: tuple[DataPolicy, ...] = ()

    @property
    def unrestricted(self) -> bool:
        return not (
            self.required_sites or self.excluded_sites or self.fatal
        )

    @property
    def impossible(self) -> bool:
        """No execution site can satisfy the constraint."""
        return (
            bool(self.fatal)
            or len(self.required_sites) > 1
            or bool(self.required_sites & self.excluded_sites)
        )

    def permits(self, site: str) -> bool:
        """Whether a QEP executing at ``site`` is admissible."""
        if self.impossible:
            return False
        site = site.lower()
        if self.required_sites and site not in self.required_sites:
            return False
        return site not in self.excluded_sites

    @property
    def rule_ids(self) -> tuple[str, ...]:
        return tuple(rule.rule_id for rule in self.applied)

    @property
    def signature(self) -> tuple:
        """Stable cache key component: two constraints with the same
        signature admit exactly the same plans (used to key per-session
        enumeration caches when principals differ across a batch)."""
        return (
            tuple(sorted(self.required_sites)),
            tuple(sorted(self.excluded_sites)),
            bool(self.fatal),
        )


class PolicyEngine:
    """Compiles the active rules into per-request plan constraints."""

    def __init__(self, config: GovernanceConfig):
        self.config = config

    @property
    def has_rules(self) -> bool:
        return bool(self.config.policies)

    def constraint_for(
        self,
        principal: Principal | None,
        tables: tuple[str, ...],
        deployment: "Deployment",
    ) -> PlanConstraint:
        """The compiled constraint for one query over ``tables``.

        Walks each participating table's *storage* site against every
        rule in the caller's scope:

        * ``deny`` matching a table at its storage site → fatal (the
          dataset cannot be read at all for this principal);
        * ``deny`` with a wildcard dataset on a site → that site joins
          the excluded-execution set (and any table stored there is
          fatal, caught by the match above);
        * ``restricted`` matching a table at its storage site → that
          site joins the required-execution set (raw rows stay put; the
          join runs where the data lives).
        """
        applicable = [
            rule for rule in self.config.policies if rule.applies_to(principal)
        ]
        if not applicable:
            return PlanConstraint()
        required: dict[str, DataPolicy] = {}
        excluded: dict[str, DataPolicy] = {}
        fatal: list[DataPolicy] = []
        applied: list[DataPolicy] = []

        def note(rule: DataPolicy) -> None:
            if rule not in applied:
                applied.append(rule)

        storage_sites = {table: deployment.site_of(table).lower() for table in tables}
        for rule in applicable:
            if rule.effect == "deny" and rule.dataset == WILDCARD:
                # Site-wide exclusion: nothing executes there.
                for site in (
                    set(storage_sites.values())
                    if rule.site == WILDCARD
                    else {rule.site}
                ):
                    excluded.setdefault(site, rule)
                note(rule)
        for table, site in storage_sites.items():
            for rule in applicable:
                if not rule.matches(table, site):
                    continue
                if rule.effect == "deny":
                    if rule not in fatal:
                        fatal.append(rule)
                    note(rule)
                else:  # restricted: execution pinned to the storage site
                    required.setdefault(site, rule)
                    note(rule)
        return PlanConstraint(
            required_sites=frozenset(required),
            excluded_sites=frozenset(excluded),
            fatal=tuple(fatal),
            applied=tuple(applied),
        )
