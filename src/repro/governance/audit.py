"""Append-only, hash-chained audit log of gateway envelope traffic.

Every envelope the gateway acts on — submits, observes, front-door batch
flushes, rebalance cycles, policy denials — appends one
:class:`AuditRecord`.  Records form a hash chain: each carries the SHA-256
of its own canonical payload *plus the previous record's hash*, so the
log is tamper-evident — editing, dropping or reordering any record
breaks verification of every record after it.  :func:`verify_chain`
checks a record sequence end to end; :meth:`AuditLog.verify` checks the
live log.

The log is deliberately parent-side and in-memory: it observes the
pipeline, it never participates in it, so a permissive governance plane
stays bitwise-equivalent to running with none (the subsystem's hard
gate).  Timestamps come from the module-level ``time_fn`` (monkeypatch
it in tests for deterministic records; same idiom as
:data:`repro.core.cache.time_fn`).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path

#: Wall-clock source for record timestamps (monkeypatchable).
time_fn = time.time

#: ``prev_hash`` of the first record in every chain.
GENESIS_HASH = "0" * 64

#: Record kinds the gateway emits.
KINDS = ("submit", "observe", "batch_flush", "rebalance", "denial")


@dataclass(frozen=True)
class AuditRecord:
    """One immutable, chained entry of the audit log."""

    #: Position in the log (0-based, dense).
    seq: int
    #: One of :data:`KINDS`.
    kind: str
    #: Query-template key the envelope targeted; ``None`` for log-wide
    #: events (batch flushes, rebalances).
    template: str | None
    #: ``Principal.subject`` of the caller; ``None`` for anonymous
    #: requests and infrastructure events.
    subject: str | None
    #: Logical tick of the pipeline action; ``None`` when no tick applies.
    tick: int | None
    #: ``"ok"``, ``"denied"`` or ``"error"``.
    outcome: str
    #: Free-form short context: rule ids for a denial, trigger and item
    #: counts for a flush, the applied plan for a rebalance.
    detail: str
    #: Wall-clock time of the append (``time_fn()``).
    at: float
    #: Hash of the previous record (:data:`GENESIS_HASH` for the first).
    prev_hash: str
    #: SHA-256 over this record's canonical payload, chaining ``prev_hash``.
    hash: str


def _payload(
    seq: int,
    kind: str,
    template: str | None,
    subject: str | None,
    tick: int | None,
    outcome: str,
    detail: str,
    at: float,
    prev_hash: str,
) -> bytes:
    # repr() of a fixed-shape tuple is canonical for these field types
    # (ints, floats, strings, None) — no separator ambiguity.
    return repr(
        (seq, kind, template, subject, tick, outcome, detail, at, prev_hash)
    ).encode()


def record_hash(record: AuditRecord) -> str:
    """The hash the record *should* carry, recomputed from its fields."""
    return hashlib.sha256(
        _payload(
            record.seq,
            record.kind,
            record.template,
            record.subject,
            record.tick,
            record.outcome,
            record.detail,
            record.at,
            record.prev_hash,
        )
    ).hexdigest()


def verify_chain(records) -> bool:
    """Whether a record sequence is an intact, untampered chain.

    Checks, per record: dense 0-based ``seq``, ``prev_hash`` linkage to
    the predecessor (genesis for the first), and that ``hash`` matches
    the recomputation from the record's own fields.  An empty sequence
    is a valid (genesis) chain.
    """
    prev = GENESIS_HASH
    for index, record in enumerate(records):
        if record.seq != index:
            return False
        if record.prev_hash != prev:
            return False
        if record.hash != record_hash(record):
            return False
        prev = record.hash
    return True


def export_chain(records, path) -> int:
    """Write a record sequence as JSON lines (one record per line).

    The on-disk form is self-contained: :func:`verify_chain_file` (or
    any external verifier re-implementing :func:`record_hash`) can check
    it with no access to the process that wrote it.  Returns the number
    of records written.
    """
    lines = [
        json.dumps(asdict(record), separators=(",", ":"), sort_keys=True)
        for record in records
    ]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def verify_chain_file(path, expected_head: str | None = None) -> bool:
    """Offline verification of an exported chain file.

    Returns False for *any* defect — unparseable lines, missing fields,
    a broken chain, or (when ``expected_head`` is given) a head hash
    that does not match the anchor — rather than raising: a tampered
    file must never crash the verifier that is judging it.
    """
    records = []
    try:
        text = Path(path).read_text()
        for line in text.splitlines():
            if not line.strip():
                continue
            records.append(AuditRecord(**json.loads(line)))
    except (OSError, TypeError, ValueError):
        return False
    if not verify_chain(records):
        return False
    if expected_head is not None:
        head = records[-1].hash if records else GENESIS_HASH
        if head != expected_head:
            return False
    return True


class AuditLog:
    """Thread-safe append-only log building the hash chain.

    There is no delete, truncate or update surface — by construction.
    ``records()`` returns an immutable snapshot tuple.  ``sink``, when
    given, is called with each record *after* its append commits and
    outside the log's lock (the durability subsystem journals records
    to the WAL this way; calling out under the lock would invert its
    order against the WAL manager's checkpoint reads).
    """

    def __init__(self, sink=None):
        self._lock = threading.Lock()
        self._records: list[AuditRecord] = []
        self._head = GENESIS_HASH
        self.sink = sink

    @classmethod
    def restore(cls, records, sink=None) -> "AuditLog":
        """Rebuild a log from previously exported/journaled records.

        The chain is verified before a single record is accepted — a
        tampered journal can never masquerade as a live log.
        """
        records = list(records)
        if not verify_chain(records):
            raise ValueError("cannot restore: records are not an intact chain")
        log = cls(sink=sink)
        log._records = records
        if records:
            log._head = records[-1].hash
        return log

    def append(
        self,
        kind: str,
        *,
        template: str | None = None,
        subject: str | None = None,
        tick: int | None = None,
        outcome: str = "ok",
        detail: str = "",
    ) -> AuditRecord:
        if kind not in KINDS:
            raise ValueError(f"unknown audit record kind {kind!r}")
        with self._lock:
            seq = len(self._records)
            at = time_fn()
            prev = self._head
            digest = hashlib.sha256(
                _payload(seq, kind, template, subject, tick, outcome, detail, at, prev)
            ).hexdigest()
            record = AuditRecord(
                seq=seq,
                kind=kind,
                template=template,
                subject=subject,
                tick=tick,
                outcome=outcome,
                detail=detail,
                at=at,
                prev_hash=prev,
                hash=digest,
            )
            self._records.append(record)
            self._head = digest
        if self.sink is not None:
            self.sink(record)
        return record

    def export(self, path) -> int:
        """Export the live chain to a JSON-lines file; see
        :func:`export_chain`."""
        return export_chain(self.records(), path)

    def records(self) -> tuple[AuditRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def head_hash(self) -> str:
        """Hash of the newest record (genesis when the log is empty)."""
        with self._lock:
            return self._head

    def verify(self) -> bool:
        """Verify the live log's chain end to end."""
        return verify_chain(self.records())
