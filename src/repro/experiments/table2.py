"""Table 2: "Using MLR in different size of dataset".

The paper illustrates DREAM's stopping rule on a 10-observation,
2-variable example: fitting MLR on the first M observations for
M = 4..10 and reporting R^2.  The dataset is digitised verbatim below;
our OLS reproduces the paper's R^2 column to ~3 decimals, which doubles
as a numerical validation of the regression substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.text import render_table
from repro.ml.linear import MultipleLinearRegression

#: (cost, x1, x2) — the paper's Table 2 data columns, verbatim.
PAPER_TABLE2_ROWS: list[tuple[float, float, float]] = [
    (20.640, 0.4916, 0.2977),
    (15.557, 0.6313, 0.0482),
    (20.971, 0.9481, 0.8232),
    (24.878, 0.4855, 2.7056),
    (23.274, 0.0125, 2.7268),
    (30.216, 0.9029, 2.6456),
    (29.978, 0.7233, 3.0640),
    (31.702, 0.8749, 4.2847),
    (20.860, 0.3354, 2.1082),
    (32.836, 0.8521, 4.8217),
]

#: The paper's R^2 column: M -> R^2.
PAPER_TABLE2_R2: dict[int, float] = {
    4: 0.7571,
    5: 0.7705,
    6: 0.8371,
    7: 0.8788,
    8: 0.8876,
    9: 0.8751,
    10: 0.8945,
}


@dataclass(frozen=True)
class Table2Result:
    #: M -> (measured R^2, paper R^2).
    r_squared: dict[int, tuple[float, float]]
    max_abs_difference: float
    #: First M with R^2 >= 0.8 (the paper's threshold discussion: M = 6).
    first_m_above_08: int | None


def run_table2() -> Table2Result:
    features = np.array([[x1, x2] for _, x1, x2 in PAPER_TABLE2_ROWS])
    targets = np.array([cost for cost, _, _ in PAPER_TABLE2_ROWS])
    measured: dict[int, tuple[float, float]] = {}
    first_above = None
    for m, paper_value in PAPER_TABLE2_R2.items():
        model = MultipleLinearRegression().fit(features[:m], targets[:m])
        measured[m] = (model.r_squared_, paper_value)
        if first_above is None and model.r_squared_ >= 0.8:
            first_above = m
    max_diff = max(abs(a - b) for a, b in measured.values())
    return Table2Result(measured, max_diff, first_above)


def format_table2(result: Table2Result) -> str:
    rows = [
        (m, f"{ours:.4f}", f"{paper:.4f}", f"{abs(ours - paper):.4f}")
        for m, (ours, paper) in sorted(result.r_squared.items())
    ]
    table = render_table(
        ["M", "R^2 (ours)", "R^2 (paper)", "|diff|"],
        rows,
        title="Table 2: Using MLR in different size of dataset.",
    )
    threshold_note = (
        f"R^2 >= 0.8 first reached at M = {result.first_m_above_08} "
        "(paper: M = 6)."
    )
    return f"{table}\nmax |diff| = {result.max_abs_difference:.4f}\n{threshold_note}"
