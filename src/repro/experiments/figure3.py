"""Figure 3: comparing the two MOQP approaches.

The paper contrasts (left branch) a *genetic multi-objective* pipeline —
evolve a Pareto plan set once, then answer any user policy with the
Weighted-Sum/constraint step of Algorithm 2 — against (right branch) the
*WSM-scalarised* pipeline of stock IReS, where the weighted sum drives
the whole search and a weight change restarts the optimisation.

This experiment makes the comparison quantitative on a real QEP space
(TPC-H Q12 on the federation, node counts x execution engine): for a
sweep of user weight vectors it measures, per approach,

* cost-model evaluations consumed (the expensive operation at Example
  3.1 scale),
* the achieved weighted-sum value vs the true optimum (regret), and
* for the GA branch, the hypervolume of its Pareto front vs the exact
  front.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.text import render_table
from repro.ires.modelling import DreamStrategy
from repro.ires.optimizer import MultiObjectiveOptimizer, OptimizerConfig
from repro.moqp.nsga2 import Nsga2Config
from repro.moqp.pareto import hypervolume_2d, pareto_front_indices
from repro.moqp.scalar_ga import ScalarGaConfig, ScalarGeneticOptimizer
from repro.moqp.selection import best_in_pareto
from repro.moqp.wsm import WeightedSumModel, normalise_objectives
from repro.plans.binder import plan_sql
from repro.plans.optimizer import optimize
from repro.tpch.queries import TPCH_QUERIES
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload


@dataclass(frozen=True)
class Figure3Config:
    query: str = "q12"
    scale_mib: float = 100.0
    history_runs: int = 40
    weight_sweep: tuple[tuple[float, float], ...] = (
        (1.0, 0.0), (0.9, 0.1), (0.75, 0.25), (0.5, 0.5),
        (0.25, 0.75), (0.1, 0.9), (0.0, 1.0),
    )
    seed: int = 7
    #: Larger node menus make the QEP space big enough to be interesting.
    node_options: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)
    generations: int = 25
    population: int = 32


@dataclass
class Figure3Result:
    candidate_count: int = 0
    exact_front_size: int = 0
    ga_front_size: int = 0
    #: Fraction of the exact front's hypervolume the GA front covers.
    hypervolume_ratio: float = 0.0
    #: Evaluations: GA pipeline once + per weight change (approx 0).
    ga_evaluations: int = 0
    #: Evaluations the WSM pipeline spent across the whole sweep.
    wsm_evaluations: int = 0
    #: Per weight vector: (ga_regret, wsm_regret) vs the true optimum.
    regrets: list[tuple[float, float]] = field(default_factory=list)
    weight_sweep: tuple = ()

    @property
    def mean_ga_regret(self) -> float:
        return sum(r[0] for r in self.regrets) / len(self.regrets)

    @property
    def mean_wsm_regret(self) -> float:
        return sum(r[1] for r in self.regrets) / len(self.regrets)


def run_figure3(config: Figure3Config | None = None) -> Figure3Result:
    config = config or Figure3Config()
    workload = TpchFederationWorkload(
        TpchFederationConfig(
            scale_mib=config.scale_mib,
            seed=config.seed,
            queries=(config.query,),
            node_options={
                "cloud-a": list(config.node_options),
                "cloud-b": list(config.node_options),
            },
            fixed_execution=None,  # both engines: the full QEP space
        )
    )
    history = workload.build_history(config.query, config.history_runs)
    cost_model = DreamStrategy(r2_required=0.8).fit(history)

    template = TPCH_QUERIES[config.query]
    params = template.sample_params(workload._param_rng)
    plan = optimize(plan_sql(template.render(params), workload.dataset.catalog))
    candidates = workload.enumerator.enumerate(
        config.query, plan, workload.dataset.logical_stats, template.tables
    )

    optimizer = MultiObjectiveOptimizer(
        OptimizerConfig(
            algorithm="nsga2",
            nsga2=Nsga2Config(
                population_size=config.population,
                generations=config.generations,
                seed=config.seed,
            ),
        )
    )
    metrics = ("time", "money")

    # Ground truth: exhaustive evaluation of the whole QEP space — one
    # batched predict_matrix call through the problem's matrix backend,
    # and the vectorized front scan (the space would also fit the
    # optimizer's exact path: the default exact_limit now covers it).
    exact_problem = optimizer.build_problem(candidates, cost_model, metrics)
    exact = exact_problem.evaluate_all()
    vectors = [c.objectives for c in exact]
    exact_front = [exact[i] for i in pareto_front_indices(vectors)]
    normalised = normalise_objectives(vectors)
    reference = (1.1, 1.1)
    exact_hv = hypervolume_2d(
        [normalised[i] for i in pareto_front_indices(vectors)], reference
    )

    result = Figure3Result(
        candidate_count=len(candidates),
        exact_front_size=len(exact_front),
        weight_sweep=config.weight_sweep,
    )

    # Left branch: GA once -> Pareto set -> Algorithm 2 per weight vector.
    from repro.moqp.nsga2 import Nsga2

    ga_problem = optimizer.build_problem(candidates, cost_model, metrics)
    ga_front = Nsga2(optimizer.config.nsga2).optimise(ga_problem)
    result.ga_evaluations = ga_problem.evaluation_count  # one-off cost
    result.ga_front_size = len(ga_front)

    index_of = {id(c): i for i, c in enumerate(candidates)}
    ga_normalised = []
    for member in ga_front:
        ga_normalised.append(normalised[index_of[id(member.payload)]])
    ga_hv = hypervolume_2d(ga_normalised, reference)
    result.hypervolume_ratio = ga_hv / exact_hv if exact_hv > 0 else 1.0

    # Right branch: WSM-driven GA, re-run per weight change.
    for weights in config.weight_sweep:
        model = WeightedSumModel(weights)
        scores = [model.scalarise(v) for v in normalised]
        true_best = min(scores)
        span = max(scores) - true_best

        ga_choice = best_in_pareto(ga_front, weights)
        ga_score = model.scalarise(normalised[index_of[id(ga_choice.payload)]])

        wsm_problem = optimizer.build_problem(candidates, cost_model, metrics)
        wsm_choice = ScalarGeneticOptimizer(
            weights,
            ScalarGaConfig(
                population_size=config.population,
                generations=config.generations,
                seed=config.seed,
            ),
        ).optimise(wsm_problem)
        result.wsm_evaluations += wsm_problem.evaluation_count
        wsm_score = model.scalarise(normalised[index_of[id(wsm_choice.payload)]])

        if span > 0:
            result.regrets.append(
                ((ga_score - true_best) / span, (wsm_score - true_best) / span)
            )
        else:
            result.regrets.append((0.0, 0.0))
    return result


def format_figure3(result: Figure3Result) -> str:
    rows = []
    for weights, (ga_regret, wsm_regret) in zip(result.weight_sweep, result.regrets):
        rows.append(
            (f"({weights[0]:.2f}, {weights[1]:.2f})", f"{ga_regret:.4f}", f"{wsm_regret:.4f}")
        )
    table = render_table(
        ["weights (time, money)", "GA+Pareto regret", "WSM-GA regret"],
        rows,
        title="Figure 3: genetic/Pareto pipeline vs WSM-scalarised pipeline.",
    )
    sweep = len(result.weight_sweep)
    notes = [
        f"QEP space: {result.candidate_count} candidates; exact front: "
        f"{result.exact_front_size}, GA front: {result.ga_front_size} "
        f"(hypervolume ratio {result.hypervolume_ratio:.3f})",
        f"cost-model evaluations for {sweep} weight changes: "
        f"GA+Pareto = {result.ga_evaluations} (optimise once, reuse), "
        f"WSM-GA = {result.wsm_evaluations} (re-optimise per change)",
        f"mean regret: GA+Pareto {result.mean_ga_regret:.4f}, "
        f"WSM-GA {result.mean_wsm_regret:.4f}",
    ]
    return table + "\n" + "\n".join(notes)
