"""Experiment drivers: one module per paper table/figure.

Every module exposes a ``run_*`` function returning a result object and
a ``format_*`` helper that renders the paper-shaped table.  The
``benchmarks/`` directory wraps these with pytest-benchmark.
"""

from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2, PAPER_TABLE2_ROWS
from repro.experiments.mre import (
    MreExperimentResult,
    run_mre_experiment,
    format_mre_table,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.experiments.figure3 import run_figure3, format_figure3
from repro.experiments.example31 import run_example31, format_example31

__all__ = [
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "PAPER_TABLE2_ROWS",
    "MreExperimentResult",
    "run_mre_experiment",
    "format_mre_table",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "run_figure3",
    "format_figure3",
    "run_example31",
    "format_example31",
]
