"""Tables 3 & 4: Mean Relative Error of DREAM vs the BML baselines.

Protocol (mirrors §4.2-4.3 of the paper, prequentially):

1. Run a stream of randomised executions of each TPC-H query (12, 13,
   14, 17) on the simulated Hive+PostgreSQL federation under a drifting
   load, logging (features, measured time) per run.
2. For each of the last ``test_runs`` observations, every estimator
   trains on everything strictly older (through its own window policy)
   and predicts the run's execution time.
3. Report MRE (paper Eq. 15) per query per estimator.

Estimators: DREAM (Algorithm 1, R^2_require = 0.8) against the stock
IReS Best-ML model trained on windows N, 2N, 3N and unlimited, with
``N = L + 2`` (the paper's §4.3 set-up exactly).

The execution histories are built through the federation gateway
(:meth:`~repro.workloads.tpch_runner.TpchFederationWorkload.build_history`
drives typed ``ObserveRequest`` envelopes with per-run sampled
statistics); the prequential evaluation then replays raw estimators over
history prefixes, which is deliberately *below* the gateway — it is the
oracle protocol, not a serving path.

Absolute MREs differ from the paper's (their testbed, our simulator);
the *shape* — DREAM smallest in every row, with a training window that
stays "around N" — is asserted by the benchmark harness.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.common.text import render_table
from repro.core.dream import DreamEstimator
from repro.core.history import ExecutionHistory
from repro.ml.linear import minimum_observations
from repro.ml.metrics import mean_relative_error
from repro.ml.selection import BestModelSelector, ObservationWindow, PAPER_WINDOWS
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload

#: The paper's Table 3 (100 MiB): query -> estimator -> MRE.
PAPER_TABLE3: dict[str, dict[str, float]] = {
    "q12": {"BML_N": 0.265, "BML_2N": 0.459, "BML_3N": 0.220, "BML": 0.485, "DREAM": 0.146},
    "q13": {"BML_N": 0.434, "BML_2N": 0.517, "BML_3N": 0.381, "BML": 0.358, "DREAM": 0.258},
    "q14": {"BML_N": 0.373, "BML_2N": 0.340, "BML_3N": 0.335, "BML": 0.358, "DREAM": 0.319},
    "q17": {"BML_N": 0.404, "BML_2N": 0.396, "BML_3N": 0.267, "BML": 0.965, "DREAM": 0.119},
}

#: The paper's Table 4 (1 GiB).
PAPER_TABLE4: dict[str, dict[str, float]] = {
    "q12": {"BML_N": 0.349, "BML_2N": 0.854, "BML_3N": 0.341, "BML": 0.480, "DREAM": 0.335},
    "q13": {"BML_N": 0.396, "BML_2N": 0.843, "BML_3N": 0.457, "BML": 0.487, "DREAM": 0.349},
    "q14": {"BML_N": 0.468, "BML_2N": 0.664, "BML_3N": 0.539, "BML": 0.790, "DREAM": 0.318},
    "q17": {"BML_N": 0.620, "BML_2N": 0.611, "BML_3N": 0.681, "BML": 0.970, "DREAM": 0.536},
}

ESTIMATOR_ORDER = ("BML_N", "BML_2N", "BML_3N", "BML", "DREAM")


@dataclass(frozen=True)
class MreExperimentConfig:
    scale_mib: float = 100.0
    train_runs: int = 110
    test_runs: int = 20
    #: MREs are averaged over these independent workload seeds; single
    #: 20-point MREs are noisy enough for adjacent estimators to swap.
    seeds: tuple[int, ...] = (7, 11, 23)
    drift: str = "paper"
    r2_required: float = 0.8
    #: Algorithm 1's Mmax as a multiple of N = L + 2.  Bounds how stale
    #: DREAM's window may grow when no window reaches R^2_require.
    max_window_multiplier: int = 4
    target_metric: str = "time"
    queries: tuple[str, ...] = ("q12", "q13", "q14", "q17")
    physical_scale_factor: float = 0.0005


@dataclass
class MreExperimentResult:
    scale_mib: float
    #: query -> estimator label -> MRE.
    mre: dict[str, dict[str, float]] = field(default_factory=dict)
    #: query -> mean DREAM window size across test points.
    dream_window_mean: dict[str, float] = field(default_factory=dict)
    #: The N each query's window policies are based on (L + 2).
    minimum_window: int = 0

    def dream_wins(self, query: str) -> bool:
        row = self.mre[query]
        return row["DREAM"] <= min(v for k, v in row.items() if k != "DREAM")

    def dream_wins_everywhere(self) -> bool:
        return all(self.dream_wins(query) for query in self.mre)


def evaluate_history(
    history: ExecutionHistory,
    test_runs: int,
    r2_required: float = 0.8,
    target_metric: str = "time",
    max_window_multiplier: int = 4,
) -> tuple[dict[str, float], float]:
    """Prequential MRE per estimator over the last ``test_runs`` points.

    Returns (label -> MRE, mean DREAM window size).
    """
    datasets = history.datasets()
    target_data = datasets[target_metric]
    total = target_data.size
    start = total - test_runs
    minimum = minimum_observations(target_data.dimension)
    if start < minimum:
        raise ValueError(
            f"need at least {minimum + test_runs} observations, have {total}"
        )

    actuals: list[float] = []
    predictions: dict[str, list[float]] = {label: [] for label in ESTIMATOR_ORDER}
    dream_windows: list[int] = []
    dream = DreamEstimator(
        r2_required=r2_required,
        max_window=max_window_multiplier * minimum,
    )

    for index in range(start, total):
        features = target_data.features[index]
        actuals.append(float(target_data.targets[index]))

        past = {metric: data.head(index) for metric, data in datasets.items()}
        result = dream.fit(past)
        predictions["DREAM"].append(result.predict_metric(target_metric, features))
        dream_windows.append(result.window_size)

        for window in PAPER_WINDOWS:
            label = window.label()
            selector = BestModelSelector()
            best = selector.fit(window.apply(past[target_metric]))
            predictions[label].append(best.predict_one(features))

    mre = {
        label: mean_relative_error(actuals, values)
        for label, values in predictions.items()
    }
    return mre, statistics.fmean(dream_windows)


def run_mre_experiment(config: MreExperimentConfig | None = None) -> MreExperimentResult:
    """Full Table 3 (or 4) reproduction for the configured scale.

    Per-query MREs (and DREAM window sizes) are averaged over
    ``config.seeds`` independent workload realisations.
    """
    config = config or MreExperimentConfig()
    total_runs = config.train_runs + config.test_runs
    result = MreExperimentResult(scale_mib=config.scale_mib)
    per_seed_mre: dict[str, list[dict[str, float]]] = {q: [] for q in config.queries}
    per_seed_window: dict[str, list[float]] = {q: [] for q in config.queries}

    for seed in config.seeds:
        workload = TpchFederationWorkload(
            TpchFederationConfig(
                scale_mib=config.scale_mib,
                physical_scale_factor=config.physical_scale_factor,
                queries=config.queries,
                seed=seed,
                drift=config.drift,
            )
        )
        for query in config.queries:
            history = workload.build_history(query, total_runs)
            mre, window_mean = evaluate_history(
                history,
                config.test_runs,
                config.r2_required,
                config.target_metric,
                config.max_window_multiplier,
            )
            per_seed_mre[query].append(mre)
            per_seed_window[query].append(window_mean)
            result.minimum_window = minimum_observations(len(history.feature_names))

    for query in config.queries:
        samples = per_seed_mre[query]
        result.mre[query] = {
            label: statistics.fmean(sample[label] for sample in samples)
            for label in ESTIMATOR_ORDER
        }
        result.dream_window_mean[query] = statistics.fmean(per_seed_window[query])
    return result


def format_mre_table(
    result: MreExperimentResult,
    paper: dict[str, dict[str, float]] | None = None,
    title: str = "",
) -> str:
    """Render the paper-shaped table, optionally with paper values inline."""
    headers = ["Query", *ESTIMATOR_ORDER]
    rows = []
    for query in sorted(result.mre):
        row = [query[1:]]  # "q12" -> "12" like the paper
        for label in ESTIMATOR_ORDER:
            value = f"{result.mre[query][label]:.3f}"
            if paper is not None:
                value += f" ({paper[query][label]:.3f})"
            row.append(value)
        rows.append(row)
    table = render_table(headers, rows, title=title)
    windows = ", ".join(
        f"{query}={mean:.1f}" for query, mean in sorted(result.dream_window_mean.items())
    )
    notes = [
        f"N = L + 2 = {result.minimum_window}; mean DREAM window: {windows}",
        f"DREAM smallest in every row: {result.dream_wins_everywhere()}",
    ]
    if paper is not None:
        notes.append("(values in parentheses: the paper's measurements)")
    return table + "\n" + "\n".join(notes)
