"""Table 1: example of instances pricing.

Renders our instance catalog in exactly the paper's row order and checks
it against the prices printed in the paper (they must match verbatim —
the catalog *is* the table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import PAPER_TABLE1_CATALOG, InstanceType
from repro.common.text import render_table
from repro.common.units import usd

#: (provider, machine, vCPU, memory GiB, storage, price/hour) — verbatim.
PAPER_TABLE1_ROWS = [
    ("Amazon", "a1.medium", 1, 2, "EBS-Only", 0.0049),
    ("Amazon", "a1.large", 2, 4, "EBS-Only", 0.0098),
    ("Amazon", "a1.xlarge", 4, 8, "EBS-Only", 0.0197),
    ("Amazon", "a1.2xlarge", 8, 16, "EBS-Only", 0.0394),
    ("Amazon", "a1.4xlarge", 16, 32, "EBS-Only", 0.0788),
    ("Microsoft", "B1S", 1, 1, "2", 0.011),
    ("Microsoft", "B1MS", 1, 2, "4", 0.021),
    ("Microsoft", "B2S", 2, 4, "8", 0.042),
    ("Microsoft", "B2MS", 2, 8, "16", 0.084),
    ("Microsoft", "B4MS", 4, 16, "32", 0.166),
    ("Microsoft", "B8MS", 8, 32, "64", 0.333),
]


@dataclass(frozen=True)
class Table1Result:
    rows: list[tuple]
    matches_paper: bool


def _catalog_row(instance: InstanceType) -> tuple:
    return (
        instance.provider.value,
        instance.name,
        instance.vcpus,
        instance.memory_gib,
        instance.storage_description,
        instance.price_per_hour,
    )


def run_table1() -> Table1Result:
    """Build Table 1 from the live catalog and verify it verbatim."""
    rows = [_catalog_row(i) for i in PAPER_TABLE1_CATALOG]
    expected = [
        (provider, name, vcpus, float(memory), storage, price)
        for provider, name, vcpus, memory, storage, price in PAPER_TABLE1_ROWS
    ]
    actual = [
        (provider, name, vcpus, float(memory), storage, price)
        for provider, name, vcpus, memory, storage, price in rows
    ]
    return Table1Result(rows=rows, matches_paper=actual == expected)


def format_table1(result: Table1Result) -> str:
    display = [
        (provider, machine, vcpus, f"{memory:g}", storage, usd(price))
        for provider, machine, vcpus, memory, storage, price in result.rows
    ]
    table = render_table(
        ["Provider", "Machine", "vCPU", "Memory (GiB)", "Storage (GiB)", "Price"],
        display,
        title="Table 1: Example of instances pricing.",
    )
    status = "matches the paper verbatim" if result.matches_paper else "MISMATCH vs paper"
    return f"{table}\n[{status}]"
