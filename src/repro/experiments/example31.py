"""Example 3.1: the QEP-space blow-up and why small training sets matter.

The paper: "If the pool of resources includes 70 vCPU and 260GB of
memory, the number of different configurations to execute this query is
thus 70 x 260 = 18,200" — and concludes that at that scale, *per-QEP
estimation cost* matters, so DREAM's small training sets pay off.

This experiment (a) checks the configuration count exactly and (b)
measures the wall-clock cost of estimating all 18,200 equivalent QEPs
with an MLR fitted on windows of increasing size M — the estimation-side
half of DREAM's value proposition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import RngStream
from repro.common.text import render_table
from repro.ires.enumerator import vm_configuration_count, vm_configuration_space
from repro.ml.linear import MultipleLinearRegression, minimum_observations


@dataclass
class Example31Result:
    configuration_count: int = 0
    matches_paper: bool = False
    #: window size M -> seconds to fit + estimate every configuration.
    estimation_seconds: dict[int, float] = field(default_factory=dict)

    def speedup_smallest_vs_largest(self) -> float:
        sizes = sorted(self.estimation_seconds)
        return self.estimation_seconds[sizes[-1]] / self.estimation_seconds[sizes[0]]


def run_example31(
    vcpu_pool: int = 70,
    memory_pool_gb: int = 260,
    window_sizes: tuple[int, ...] = (6, 24, 96, 384, 1536),
    repeats: int = 3,
    fits_per_measurement: int = 400,
    seed: int = 7,
) -> Example31Result:
    """Count the configuration space and time model building per window.

    In the optimizer's loop the model is (re)built continuously as fresh
    observations arrive, once per costed plan batch — so the measured
    quantity is ``fits_per_measurement`` model builds on a window of M
    observations plus one batch prediction over all 18,200 equivalent
    configurations.  The fit cost grows with M (normal equations are
    O(M L^2)); the batch prediction cost is constant — exactly the trade
    the paper's Example 3.1 argues about.
    """
    result = Example31Result()
    result.configuration_count = vm_configuration_count(vcpu_pool, memory_pool_gb)
    result.matches_paper = result.configuration_count == 18_200

    # Feature space of Example 3.1: (vcpus, memory) per configuration.
    configurations = np.array(
        vm_configuration_space(vcpu_pool, memory_pool_gb), dtype=float
    )
    rng = RngStream(seed, "example31")
    dimension = 2
    largest = max(window_sizes)
    features = rng.uniform(1, 100, size=(largest, dimension))
    targets = (
        10.0 + 0.3 * features[:, 0] + 0.1 * features[:, 1]
        + rng.normal(0, 1.0, size=largest)
    )

    for m in window_sizes:
        if m < minimum_observations(dimension):
            continue
        window_features = features[:m]
        window_targets = targets[:m]
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _fit in range(fits_per_measurement):
                model = MultipleLinearRegression().fit(window_features, window_targets)
            model.predict(configurations)
            best = min(best, time.perf_counter() - start)
        result.estimation_seconds[m] = best
    return result


def format_example31(result: Example31Result) -> str:
    rows = [
        (m, f"{seconds * 1000:.2f} ms")
        for m, seconds in sorted(result.estimation_seconds.items())
    ]
    table = render_table(
        ["training size M", "400 fits + estimate 18,200 QEPs"],
        rows,
        title="Example 3.1: configuration space and estimation cost.",
    )
    notes = [
        f"configurations = {result.configuration_count} "
        f"(paper: 18,200; match = {result.matches_paper})",
        f"largest/smallest window estimation cost: "
        f"{result.speedup_smallest_vs_largest():.1f}x",
    ]
    return table + "\n" + "\n".join(notes)
