"""ASCII table rendering for experiment reports.

The benchmark harness prints tables shaped like the ones in the paper;
this module owns the formatting so every report looks the same.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+------
    1 | 2.500
    """
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)
