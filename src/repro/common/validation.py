"""Precondition guards.

Small helpers that raise :class:`~repro.common.errors.ValidationError` with a
readable message.  Used at public API boundaries; internal code trusts its
callers.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> float:
    """Ensure ``value`` is strictly positive; return it for chaining."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Ensure ``low <= value <= high``; return it for chaining."""
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
