"""Seeded random-number streams.

Experiments must be reproducible: every stochastic component (data
generation, engine noise, load processes, genetic operators) draws from its
own named stream derived from one master seed.  Two components never share a
stream, so adding draws to one cannot perturb another.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, *names: str | int) -> int:
    """Derive a child seed from ``master_seed`` and a path of names.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``, which is salted per process).

    >>> derive_seed(42, "tpch", "lineitem") == derive_seed(42, "tpch", "lineitem")
    True
    >>> derive_seed(42, "a") != derive_seed(42, "b")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RngStream:
    """A named, seeded wrapper around :class:`numpy.random.Generator`.

    Parameters
    ----------
    master_seed:
        The experiment-wide seed.
    names:
        A path identifying the consumer, e.g. ``("engines", "hive", "noise")``.
    """

    def __init__(self, master_seed: int, *names: str | int):
        self.seed = derive_seed(master_seed, *names)
        self.names = names
        self._generator = np.random.default_rng(self.seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    def child(self, *names: str | int) -> "RngStream":
        """Create an independent sub-stream below this one."""
        return RngStream(self.seed, *names)

    # Convenience pass-throughs used throughout the code base. ----------

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._generator.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._generator.normal(loc, scale, size)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        return self._generator.lognormal(mean, sigma, size)

    def integers(self, low: int, high: int | None = None, size=None):
        return self._generator.integers(low, high, size)

    def choice(self, seq, size=None, replace=True, p=None):
        return self._generator.choice(seq, size=size, replace=replace, p=p)

    def shuffle(self, seq) -> None:
        self._generator.shuffle(seq)

    def random(self, size=None):
        return self._generator.random(size)

    def exponential(self, scale: float = 1.0, size=None):
        return self._generator.exponential(scale, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "/".join(str(n) for n in self.names)
        return f"RngStream({path!r}, seed={self.seed})"
