"""Exception hierarchy for the whole library.

Every error raised by ``repro`` derives from :class:`ReproError`, so callers
can catch one base class at the API boundary.  Subsystems raise the most
specific subclass that applies.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed a precondition check."""


class SchemaError(ReproError):
    """A table schema is inconsistent or a column reference cannot bind."""


class SqlError(ReproError):
    """SQL text could not be lexed, parsed or bound to a catalog."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A logical or physical query plan is malformed."""


class ExecutionError(ReproError):
    """A plan failed while being executed or simulated."""


class EstimationError(ReproError):
    """A cost model could not be fitted or queried."""


class CloudError(ReproError):
    """A cloud-federation object (provider, instance, link) is misused."""
