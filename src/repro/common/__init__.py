"""Shared utilities used by every subsystem.

This package deliberately stays dependency-light: exceptions, seeded
random-number streams, unit helpers, validation guards and ASCII table
rendering.  Nothing in here knows about queries, clouds or regression.
"""

from repro.common.errors import (
    ReproError,
    SchemaError,
    SqlError,
    PlanError,
    ExecutionError,
    EstimationError,
    CloudError,
    ValidationError,
)
from repro.common.rng import RngStream, derive_seed
from repro.common.units import (
    MIB,
    GIB,
    HOURS,
    mib,
    gib,
    bytes_to_mib,
    bytes_to_gib,
    seconds_to_hours,
    usd,
)
from repro.common.validation import require, require_positive, require_in_range
from repro.common.text import render_table

__all__ = [
    "ReproError",
    "SchemaError",
    "SqlError",
    "PlanError",
    "ExecutionError",
    "EstimationError",
    "CloudError",
    "ValidationError",
    "RngStream",
    "derive_seed",
    "MIB",
    "GIB",
    "HOURS",
    "mib",
    "gib",
    "bytes_to_mib",
    "bytes_to_gib",
    "seconds_to_hours",
    "usd",
    "require",
    "require_positive",
    "require_in_range",
    "render_table",
]
