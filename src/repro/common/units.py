"""Unit helpers.

Internally the library uses **bytes** for data sizes, **seconds** for
durations and **US dollars** for money.  These helpers convert at the
boundaries and keep magic numbers out of the code.
"""

from __future__ import annotations

MIB: int = 1024 * 1024
GIB: int = 1024 * MIB
HOURS: float = 3600.0


def mib(value: float) -> float:
    """Convert mebibytes to bytes."""
    return float(value) * MIB


def gib(value: float) -> float:
    """Convert gibibytes to bytes."""
    return float(value) * GIB


def bytes_to_mib(value: float) -> float:
    """Convert bytes to mebibytes."""
    return float(value) / MIB


def bytes_to_gib(value: float) -> float:
    """Convert bytes to gibibytes."""
    return float(value) / GIB


def seconds_to_hours(value: float) -> float:
    """Convert seconds to hours."""
    return float(value) / HOURS


def usd(value: float) -> str:
    """Format a dollar amount the way the paper's Table 1 does."""
    if value < 0.1:
        return f"${value:.4f}"
    return f"${value:.2f}"
