"""Bounded model cache: LRU capacity + idle-TTL expiry, exact counters.

Long-running multi-tenant deployments register far more query templates
than are hot at any moment.  :class:`ModelCache` bounds the per-template
estimation engines (e.g. :class:`~repro.core.dream.OnlineDreamEstimator`
instances) that :class:`~repro.ires.modelling.DreamStrategy` used to
keep for the process lifetime (the ROADMAP "model cache eviction" item):

* **LRU capacity** — at most ``capacity`` entries; inserting past that
  evicts the least-recently-used entry.
* **Idle TTL** — an entry untouched for ``ttl_seconds`` expires on its
  next lookup (lazy expiry: no background thread).
* **Exact stats** — every lookup is classified as exactly one of hit /
  miss, and every removal as eviction (capacity, ``clear``, or a
  recycled-key replacement) or expiration (TTL), under one lock, so
  tests can assert the counters precisely.

Eviction is always safe for estimation engines: their state is derived
from the (append-only) execution history, so a re-created engine refits
to the identical window and predictions — only the incremental speedup
is lost for one call.  The cache is thread-safe; the factory passed to
:meth:`ModelCache.get_or_create` runs under the cache lock and must be
cheap (construct the engine, do not fit it).

TTL behaviour is testable without sleeping at two levels: pass a
``clock`` per cache, or monkeypatch the module-level :data:`time_fn`
default — caches constructed without an explicit clock (e.g. deep
inside a registry factory) read ``time_fn`` at every lookup, so a test
can fast-forward them after construction.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.validation import require

#: Default clock (monotonic seconds) for caches built without an
#: explicit ``clock``.  Looked up at call time, never captured at
#: construction, so ``monkeypatch.setattr("repro.core.cache.time_fn",
#: fake)`` makes TTL expiry deterministic even for caches created by
#: code that does not expose the clock parameter.
time_fn: Callable[[], float] = time.monotonic


def _default_clock() -> float:
    return time_fn()


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("value", "anchor", "last_used")

    def __init__(self, value: Any, anchor: Any, last_used: float):
        self.value = value
        self.anchor = anchor
        self.last_used = last_used


class ModelCache:
    """Thread-safe LRU + idle-TTL cache for per-template model engines.

    Parameters
    ----------
    capacity:
        Maximum number of live entries (>= 1).
    ttl_seconds:
        Entries idle longer than this expire on their next lookup;
        ``None`` disables TTL.
    clock:
        Monotonic-seconds source, injectable for tests; ``None`` (the
        default) defers to the monkeypatchable module-level
        :data:`time_fn` on every lookup.
    """

    def __init__(
        self,
        capacity: int = 64,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] | None = None,
    ):
        require(capacity >= 1, f"capacity must be >= 1, got {capacity}")
        if ttl_seconds is not None:
            require(ttl_seconds > 0, f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.capacity = int(capacity)
        self.ttl_seconds = ttl_seconds
        self._clock = clock if clock is not None else _default_clock
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # Lookup ---------------------------------------------------------------

    def get_or_create(
        self, key: Any, factory: Callable[[], Any], anchor: Any = None
    ) -> Any:
        """Return the cached value for ``key``, creating it on a miss.

        ``anchor`` guards against key reuse: an ``id()``-based key can be
        recycled after garbage collection, so a cached entry only counts
        as a hit when its anchor is the *same object* that was passed at
        creation time.  The anchor is held by the entry, keeping the
        anchored object (e.g. an execution history) alive while cached.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if self._expired(entry, now):
                    del self._entries[key]
                    self._expirations += 1
                elif anchor is not None and entry.anchor is not anchor:
                    # Recycled key: the stale entry's removal counts as
                    # an eviction so every removal stays accounted for,
                    # and the lookup itself is a miss.
                    del self._entries[key]
                    self._evictions += 1
                else:
                    entry.last_used = now
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry.value
            self._misses += 1
            value = factory()
            self._entries[key] = _Entry(value, anchor, now)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def peek(self, key: Any) -> Any | None:
        """The cached value without touching LRU order, TTL, or counters."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.value

    def _expired(self, entry: _Entry, now: float) -> bool:
        return (
            self.ttl_seconds is not None
            and now - entry.last_used > self.ttl_seconds
        )

    # Maintenance ----------------------------------------------------------

    def purge_expired(self) -> int:
        """Drop every idle-expired entry now; returns how many."""
        now = self._clock()
        with self._lock:
            stale = [
                key for key, entry in self._entries.items() if self._expired(entry, now)
            ]
            for key in stale:
                del self._entries[key]
            self._expirations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (counted as evictions)."""
        with self._lock:
            self._evictions += len(self._entries)
            self._entries.clear()

    # Introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats
        return (
            f"ModelCache(size={s.size}/{self.capacity}, ttl={self.ttl_seconds}, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions}, "
            f"expirations={s.expirations})"
        )
