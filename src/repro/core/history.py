"""Execution history: the time-ordered observation store.

Every query execution logged by IReS becomes an :class:`Observation`:
a feature vector (the x of the paper's Eq. 5 — data sizes, node counts)
plus one measured value per cost metric.  DREAM and the BML baselines
draw their training windows from here; order is the append order, which
is time order, so "the last m observations" are the freshest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import EstimationError
from repro.ml.dataset import Dataset


@dataclass(frozen=True)
class Observation:
    """One logged execution."""

    tick: int
    features: dict[str, float]
    costs: dict[str, float]


class ExecutionHistory:
    """Append-only, time-ordered log of executions for one workload unit.

    The paper keeps per-query-template histories (Tables 3-4 report one
    model per TPC-H query); instantiate one history per template.
    """

    def __init__(self, feature_names: tuple[str, ...], metric_names: tuple[str, ...]):
        if not feature_names:
            raise EstimationError("history needs at least one feature")
        if not metric_names:
            raise EstimationError("history needs at least one metric")
        self.feature_names = tuple(feature_names)
        self.metric_names = tuple(metric_names)
        self._observations: list[Observation] = []

    # Mutation ------------------------------------------------------------

    def append(self, tick: int, features: dict[str, float], costs: dict[str, float]) -> None:
        missing_features = set(self.feature_names) - set(features)
        if missing_features:
            raise EstimationError(f"observation missing features {sorted(missing_features)}")
        missing_metrics = set(self.metric_names) - set(costs)
        if missing_metrics:
            raise EstimationError(f"observation missing metrics {sorted(missing_metrics)}")
        if self._observations and tick < self._observations[-1].tick:
            raise EstimationError(
                f"ticks must be non-decreasing: {tick} after {self._observations[-1].tick}"
            )
        self._observations.append(
            Observation(
                tick,
                {name: float(features[name]) for name in self.feature_names},
                {name: float(costs[name]) for name in self.metric_names},
            )
        )

    # Introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._observations)

    @property
    def observations(self) -> list[Observation]:
        return list(self._observations)

    def last_tick(self) -> int:
        if not self._observations:
            raise EstimationError("history is empty")
        return self._observations[-1].tick

    # Dataset views -----------------------------------------------------------

    def feature_matrix(self) -> np.ndarray:
        return np.array(
            [[obs.features[name] for name in self.feature_names] for obs in self._observations],
            dtype=float,
        ).reshape(len(self._observations), len(self.feature_names))

    def dataset(self, metric: str) -> Dataset:
        """The full history as a Dataset targeting one metric."""
        if metric not in self.metric_names:
            raise EstimationError(
                f"unknown metric {metric!r}; history tracks {self.metric_names}"
            )
        targets = np.array(
            [obs.costs[metric] for obs in self._observations], dtype=float
        )
        return Dataset(self.feature_matrix(), targets, self.feature_names)

    def datasets(self) -> dict[str, Dataset]:
        """One Dataset per tracked metric (shared feature matrix)."""
        return {metric: self.dataset(metric) for metric in self.metric_names}

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExecutionHistory(size={self.size}, features={self.feature_names}, "
            f"metrics={self.metric_names})"
        )
