"""Execution history: the time-ordered observation store.

Every query execution logged by IReS becomes an :class:`Observation`:
a feature vector (the x of the paper's Eq. 5 — data sizes, node counts)
plus one measured value per cost metric.  DREAM and the BML baselines
draw their training windows from here; order is the append order, which
is time order, so "the last m observations" are the freshest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import EstimationError
from repro.ml.dataset import Dataset


@dataclass(frozen=True)
class Observation:
    """One logged execution."""

    tick: int
    features: dict[str, float]
    costs: dict[str, float]


class ExecutionHistory:
    """Append-only, time-ordered log of executions for one workload unit.

    The paper keeps per-query-template histories (Tables 3-4 report one
    model per TPC-H query); instantiate one history per template.
    """

    def __init__(self, feature_names: tuple[str, ...], metric_names: tuple[str, ...]):
        if not feature_names:
            raise EstimationError("history needs at least one feature")
        if not metric_names:
            raise EstimationError("history needs at least one metric")
        self.feature_names = tuple(feature_names)
        self.metric_names = tuple(metric_names)
        self._observations: list[Observation] = []
        #: Monotonically increasing change counter, bumped on every
        #: append.  Incremental estimators key their per-metric state on
        #: this, so an unchanged history means a cache hit.
        self._version = 0
        self._observations_view: tuple[Observation, ...] | None = None
        self._matrix_cache: np.ndarray | None = None

    # Mutation ------------------------------------------------------------

    def append(self, tick: int, features: dict[str, float], costs: dict[str, float]) -> None:
        missing_features = set(self.feature_names) - set(features)
        if missing_features:
            raise EstimationError(f"observation missing features {sorted(missing_features)}")
        missing_metrics = set(self.metric_names) - set(costs)
        if missing_metrics:
            raise EstimationError(f"observation missing metrics {sorted(missing_metrics)}")
        if self._observations and tick < self._observations[-1].tick:
            raise EstimationError(
                f"ticks must be non-decreasing: {tick} after {self._observations[-1].tick}"
            )
        self._observations.append(
            Observation(
                tick,
                {name: float(features[name]) for name in self.feature_names},
                {name: float(costs[name]) for name in self.metric_names},
            )
        )
        self._version += 1
        self._observations_view = None
        self._matrix_cache = None

    # Introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._observations)

    @property
    def version(self) -> int:
        """Bumped on every append; equal versions mean identical content."""
        return self._version

    @property
    def observations(self) -> tuple[Observation, ...]:
        """Read-only view, cached until the next append (no per-access copy)."""
        if self._observations_view is None:
            self._observations_view = tuple(self._observations)
        return self._observations_view

    def last_tick(self) -> int:
        if not self._observations:
            raise EstimationError("history is empty")
        return self._observations[-1].tick

    def export_rows(self) -> list[list]:
        """Every observation as a ``[tick, features, costs]`` triple of
        plain JSON-serialisable values.  Feeding the rows back through
        :meth:`append` rebuilds a bitwise-identical history (floats
        survive a JSON round trip exactly), which is what the WAL
        checkpoint in :mod:`repro.federation.durability` relies on."""
        return [
            [obs.tick, dict(obs.features), dict(obs.costs)]
            for obs in self._observations
        ]

    # Dataset views -----------------------------------------------------------

    def feature_matrix(self) -> np.ndarray:
        """The (M, L) feature matrix, cached until the next append.

        The returned array is marked read-only: every per-metric Dataset
        shares it, so mutating it would corrupt all of them.
        """
        if self._matrix_cache is None:
            matrix = np.array(
                [
                    [obs.features[name] for name in self.feature_names]
                    for obs in self._observations
                ],
                dtype=float,
            ).reshape(len(self._observations), len(self.feature_names))
            matrix.flags.writeable = False
            self._matrix_cache = matrix
        return self._matrix_cache

    def targets(self, metric: str) -> np.ndarray:
        """The (M,) target vector of one metric."""
        if metric not in self.metric_names:
            raise EstimationError(
                f"unknown metric {metric!r}; history tracks {self.metric_names}"
            )
        return np.array(
            [obs.costs[metric] for obs in self._observations], dtype=float
        )

    def dataset(self, metric: str) -> Dataset:
        """The full history as a Dataset targeting one metric."""
        return Dataset(self.feature_matrix(), self.targets(metric), self.feature_names)

    def datasets(self) -> dict[str, Dataset]:
        """One Dataset per tracked metric, sharing ONE feature matrix.

        The matrix is materialised once (and cached); each per-metric
        Dataset holds a reference to the same array object.
        """
        features = self.feature_matrix()
        return {
            metric: Dataset(features, self.targets(metric), self.feature_names)
            for metric in self.metric_names
        }

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ExecutionHistory(size={self.size}, features={self.feature_names}, "
            f"metrics={self.metric_names})"
        )
