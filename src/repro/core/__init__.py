"""The paper's primary contribution: DREAM.

DREAM (Dynamic REgression AlgorithM) provides accurate multi-metric cost
estimation with *limited* historical data: it grows its training window
from the statistical minimum ``N = L + 2`` until the coefficient of
determination of every per-metric linear model reaches a required
threshold (Algorithm 1 of the paper), so in a drifting cloud federation
it trains on fresh observations only.
"""

from repro.core.history import ExecutionHistory, Observation
from repro.core.dream import DreamEstimator, DreamResult, OnlineDreamEstimator
from repro.core.cache import CacheStats, ModelCache
from repro.core.cost_model import MultiCostModel

__all__ = [
    "ExecutionHistory",
    "Observation",
    "DreamEstimator",
    "DreamResult",
    "OnlineDreamEstimator",
    "CacheStats",
    "ModelCache",
    "MultiCostModel",
]
