"""Multi-metric cost model facade.

Wraps *any* per-metric fitted regressors (DREAM's MLRs, a BML winner, or
a mix) behind one ``predict -> cost vector`` interface, which is what the
multi-objective optimizer consumes.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.common.errors import EstimationError
from repro.ml.base import Regressor


class MultiCostModel:
    """metric name -> fitted regressor, with vector prediction."""

    def __init__(self, models: Mapping[str, Regressor], feature_names: tuple[str, ...]):
        if not models:
            raise EstimationError("MultiCostModel needs at least one metric model")
        for metric, model in models.items():
            if not model.is_fitted:
                raise EstimationError(f"model for metric {metric!r} is not fitted")
        self._models = dict(models)
        self.feature_names = tuple(feature_names)

    @property
    def metrics(self) -> tuple[str, ...]:
        return tuple(self._models)

    def model(self, metric: str) -> Regressor:
        try:
            return self._models[metric]
        except KeyError:
            raise EstimationError(
                f"unknown metric {metric!r}; have {sorted(self._models)}"
            ) from None

    def predict(self, features) -> dict[str, float]:
        x = np.asarray(features, dtype=float).reshape(-1)
        if x.shape[0] != len(self.feature_names):
            raise EstimationError(
                f"expected {len(self.feature_names)} features "
                f"({', '.join(self.feature_names)}), got {x.shape[0]}"
            )
        return {metric: model.predict_one(x) for metric, model in self._models.items()}

    def predict_vector(self, features, order: tuple[str, ...]) -> tuple[float, ...]:
        """Prediction as a tuple in a fixed metric order (for Pareto work)."""
        predictions = self.predict(features)
        return tuple(predictions[metric] for metric in order)

    def predict_batch(self, features_matrix) -> dict[str, np.ndarray]:
        """Predict every row at once: metric -> (n,) vector.

        Each per-metric regressor receives the full (n, L) matrix in one
        call, so vectorised models (DREAM's clamped MLR) cost the whole
        QEP candidate set with a single matmul instead of n Python calls.
        """
        matrix = np.asarray(features_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.feature_names):
            raise EstimationError(
                f"expected (n, {len(self.feature_names)}) features "
                f"({', '.join(self.feature_names)}), got shape {matrix.shape}"
            )
        return {
            metric: np.asarray(model.predict(matrix), dtype=float)
            for metric, model in self._models.items()
        }

    def predict_matrix(self, features_matrix, order: tuple[str, ...]) -> np.ndarray:
        """Batched :meth:`predict_vector`: an (n, len(order)) objective matrix."""
        predictions = self.predict_batch(features_matrix)
        try:
            return np.column_stack([predictions[metric] for metric in order])
        except KeyError as exc:
            raise EstimationError(
                f"unknown metric {exc.args[0]!r}; have {sorted(self._models)}"
            ) from None

    def features_dict_to_vector(self, features: dict[str, float]) -> np.ndarray:
        try:
            return np.array([features[name] for name in self.feature_names], dtype=float)
        except KeyError as exc:
            raise EstimationError(f"missing feature {exc.args[0]!r}") from None
