"""Write-ahead log primitives: framed records, segments, checkpoints.

The durable substrate under :mod:`repro.federation.durability`.  One WAL
record is::

    [4-byte LE payload length][4-byte LE CRC32 of payload][payload]

where the payload is a UTF-8 JSON object (JSON round-trips Python floats
through ``repr``-shortest form, which is what keeps replayed histories
*bitwise* equal to the originals).  Record framing is deliberately dumb:
no compression, no escape sequences, so a reader can always resynchronise
from the front of the file and every corruption mode maps onto exactly
one of two outcomes:

* **torn tail** — the file ends before a record's declared payload does
  (the classic partial ``write(2)`` of a crash).  :func:`scan_segment`
  reports the valid prefix and the dangling byte count; recovery
  truncates to the last intact record and carries on.
* **corruption** — a record is *fully present* but its CRC32 does not
  match (bit rot, tampering, a torn write that later got overwritten).
  That is never a crash artifact, so it raises
  :class:`WalCorruptionError` instead of being silently dropped.

Segments are named ``wal-<n>.log`` and rotate at every compacting
checkpoint; the checkpoint file itself is one framed record written to a
temp file, fsynced, then atomically renamed — so a half-written
checkpoint can never shadow a good one.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ReproError, ValidationError

#: ``<payload length, payload crc32>`` — both unsigned 32-bit LE.
HEADER = struct.Struct("<II")

#: Supported fsync policies for a :class:`WalWriter`.
FSYNC_MODES = ("always", "batch", "off")

CHECKPOINT_NAME = "checkpoint.bin"
_CHECKPOINT_TMP = "checkpoint.tmp"
_SEGMENT_RE = re.compile(r"^wal-(\d{6})\.log$")


class WalCorruptionError(ReproError):
    """A fully-present WAL or checkpoint record failed its checksum (or
    framing) — data corruption, never a plain crash artifact."""


def segment_name(number: int) -> str:
    return f"wal-{number:06d}.log"


def segment_number(path: Path) -> int:
    match = _SEGMENT_RE.match(path.name)
    if match is None:
        raise ValidationError(f"not a WAL segment name: {path.name!r}")
    return int(match.group(1))


def list_segments(directory: Path) -> list[Path]:
    """The directory's WAL segments, ordered by segment number."""
    segments = [
        path for path in Path(directory).iterdir() if _SEGMENT_RE.match(path.name)
    ]
    return sorted(segments, key=segment_number)


def encode_record(payload: dict) -> bytes:
    """Frame one JSON payload as a length+CRC32 WAL record."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    return HEADER.pack(len(body), zlib.crc32(body)) + body


@dataclass(frozen=True)
class SegmentScan:
    """Outcome of reading one segment front to back."""

    #: Decoded payloads of every intact record, in file order.
    records: tuple[dict, ...]
    #: Byte length of the intact prefix (a valid truncation point).
    valid_bytes: int
    #: Dangling bytes past the last intact record (a torn tail); 0 for a
    #: cleanly-ended segment.
    torn_bytes: int


def scan_segment(path: Path) -> SegmentScan:
    """Read every record of one segment, classifying the tail.

    A record whose header or payload runs past end-of-file is a torn
    tail: the scan stops there and reports the dangling bytes.  A record
    that is fully present but fails its CRC32 (or does not decode as a
    JSON object) raises :class:`WalCorruptionError` — a reader must
    never silently skip mid-file damage.
    """
    data = Path(path).read_bytes()
    records: list[dict] = []
    offset = 0
    while offset < len(data):
        if offset + HEADER.size > len(data):
            break  # torn header
        length, crc = HEADER.unpack_from(data, offset)
        start = offset + HEADER.size
        end = start + length
        if end > len(data):
            break  # torn payload
        body = data[start:end]
        if zlib.crc32(body) != crc:
            raise WalCorruptionError(
                f"{path.name}: record at byte {offset} is fully present but "
                f"fails its CRC32 (length={length}) — corrupted, not torn"
            )
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise WalCorruptionError(
                f"{path.name}: record at byte {offset} passed its CRC32 but "
                f"is not valid JSON: {error}"
            ) from error
        records.append(payload)
        offset = end
    return SegmentScan(
        records=tuple(records), valid_bytes=offset, torn_bytes=len(data) - offset
    )


def truncate_segment(path: Path, valid_bytes: int) -> None:
    """Drop a segment's torn tail in place (crash repair)."""
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


class WalWriter:
    """Appends framed records to one segment under an fsync policy.

    * ``"always"`` — flush + fsync after every append (no completed
      append can be lost, at the price of one disk round-trip each).
    * ``"batch"`` — flush (user-space buffer to OS) after every append,
      fsync only at :meth:`sync` boundaries (the front door calls it
      once per flushed batch) and on close.  A process crash loses
      nothing; an OS crash loses at most the records since the last
      boundary.
    * ``"off"`` — flush per append, never fsync.  Durability is left to
      the OS page cache; the mode exists to price the other two.
    """

    def __init__(self, path: Path, fsync: str = "batch"):
        if fsync not in FSYNC_MODES:
            raise ValidationError(
                f"fsync must be one of {FSYNC_MODES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._handle = open(self.path, "ab")
        self._closed = False

    def append(self, payload: dict) -> int:
        """Append one record; returns the record's encoded byte length."""
        record = encode_record(payload)
        self._handle.write(record)
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
        return len(record)

    def sync(self) -> None:
        """Force written records to stable storage (``"off"`` skips the
        fsync but still drains the user-space buffer)."""
        if self._closed:
            return
        self._handle.flush()
        if self.fsync != "off":
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._handle.close()
        self._closed = True


def write_checkpoint(directory: Path, payload: dict) -> None:
    """Atomically replace the directory's checkpoint.

    The payload is framed exactly like a WAL record (so a flipped bit is
    caught by the same CRC32), written to a temp file, fsynced, then
    renamed over :data:`CHECKPOINT_NAME` — readers see either the old
    checkpoint or the new one, never a torn hybrid.
    """
    directory = Path(directory)
    tmp = directory / _CHECKPOINT_TMP
    with open(tmp, "wb") as handle:
        handle.write(encode_record(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / CHECKPOINT_NAME)


def read_checkpoint(directory: Path) -> dict | None:
    """The directory's checkpoint payload, or ``None`` when it has never
    checkpointed.  A present-but-damaged checkpoint raises
    :class:`WalCorruptionError` (torn temp files are ignored — the
    atomic rename never published them)."""
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        return None
    scan = scan_segment(path)
    if len(scan.records) != 1 or scan.torn_bytes:
        raise WalCorruptionError(
            f"{path.name}: expected exactly one intact checkpoint record, "
            f"found {len(scan.records)} with {scan.torn_bytes} dangling bytes"
        )
    return scan.records[0]


def has_state(directory: Path) -> bool:
    """Whether the directory holds any recoverable WAL state."""
    directory = Path(directory)
    if not directory.exists():
        return False
    if (directory / CHECKPOINT_NAME).exists():
        return True
    return any(path.stat().st_size > 0 for path in list_segments(directory))


__all__ = [
    "CHECKPOINT_NAME",
    "FSYNC_MODES",
    "HEADER",
    "SegmentScan",
    "WalCorruptionError",
    "WalWriter",
    "encode_record",
    "has_state",
    "list_segments",
    "read_checkpoint",
    "scan_segment",
    "segment_name",
    "segment_number",
    "truncate_segment",
    "write_checkpoint",
]
