"""DREAM — Dynamic REgression AlgorithM (paper §3, Algorithm 1).

The estimation problem: predict the cost vector ``c_hat_N(p)`` of a query
plan from system features (data sizes, node counts) using Multiple Linear
Regression, choosing *how much* history to train on dynamically.

Algorithm 1, verbatim mapping::

    function EstimateCostValue(R2_require, X, Mmax):
        for n in 1..N: R2_n <- 0                 # one per cost metric
        m = L + 2                                # minimum training size
        while (any R2_n < R2_require_n) and m < Mmax:
            for each cost function c_n:
                fit c_hat_n on the last m observations   # Eq. 6/12
                R2_n = 1 - SSE/SST                        # Eq. 14
            m = m + 1
        return c_hat_N(p)

Because the window grows *backwards from the most recent observation*,
DREAM stops as soon as a small, fresh window already explains the data —
under drift that is typically near ``N = L + 2``, which is both the
accuracy mechanism (stale points never enter) and the speed mechanism
(each of the thousands of equivalent QEPs in Example 3.1 is estimated
from a tiny design matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import EstimationError
from repro.common.validation import require, require_in_range
from repro.ml.dataset import Dataset
from repro.ml.linear import MultipleLinearRegression, minimum_observations


@dataclass(frozen=True)
class DreamResult:
    """The outcome of one DREAM fit."""

    models: dict[str, MultipleLinearRegression]
    window_size: int
    r_squared: dict[str, float]
    converged: bool
    feature_names: tuple[str, ...]
    #: Per metric: (min, max) of the training window's targets.  Linear
    #: models extrapolate without bound outside the window's feature
    #: hull; predictions are clamped to a guard band around the observed
    #: cost range (costs are physical quantities — they cannot be
    #: negative, nor orders of magnitude outside recent observations).
    target_ranges: dict[str, tuple[float, float]] = None
    #: Allowed extrapolation beyond the observed range (factor).
    guard_factor: float = 2.0

    def predict(self, features) -> dict[str, float]:
        """Predicted cost vector ``c_hat_N(p)`` for one feature vector."""
        x = np.asarray(features, dtype=float).reshape(-1)
        return {metric: self._clamped(metric, x) for metric in self.models}

    def predict_metric(self, metric: str, features) -> float:
        if metric not in self.models:
            raise EstimationError(
                f"unknown metric {metric!r}; fitted: {sorted(self.models)}"
            )
        return self._clamped(metric, np.asarray(features, dtype=float).reshape(-1))

    def _clamped(self, metric: str, x: np.ndarray) -> float:
        raw = self.models[metric].predict_one(x)
        if not self.target_ranges or metric not in self.target_ranges:
            return raw
        low, high = self.target_ranges[metric]
        lower = low / self.guard_factor if low > 0 else low * self.guard_factor
        upper = high * self.guard_factor if high > 0 else high / self.guard_factor
        return float(min(max(raw, lower), upper))


class DreamEstimator:
    """Implements Algorithm 1 over per-metric datasets.

    Parameters
    ----------
    r2_required:
        The quality threshold ``R^2_require``; either one float for every
        metric or a per-metric mapping.  The paper recommends 0.8 (§3).
    max_window:
        ``Mmax``.  ``None`` allows growth up to the full history.
    """

    def __init__(
        self,
        r2_required: float | dict[str, float] = 0.8,
        max_window: int | None = None,
        r2_mode: str = "press",
    ):
        if isinstance(r2_required, dict):
            for metric, value in r2_required.items():
                require_in_range(value, 0.0, 1.0, f"r2_required[{metric}]")
        else:
            require_in_range(r2_required, 0.0, 1.0, "r2_required")
        self.r2_required = r2_required
        if max_window is not None:
            require(max_window >= 3, f"max_window must be >= 3, got {max_window}")
        self.max_window = max_window
        require(
            r2_mode in ("press", "training"),
            f"r2_mode must be 'press' or 'training', got {r2_mode!r}",
        )
        # "training" is the paper's literal Eq. 14; "press" (default) is
        # its leave-one-out form, which does not saturate at m = L + 2
        # where OLS interpolates (see MultipleLinearRegression docs).
        self.r2_mode = r2_mode

    def _required(self, metric: str) -> float:
        if isinstance(self.r2_required, dict):
            try:
                return self.r2_required[metric]
            except KeyError:
                raise EstimationError(
                    f"no R^2 requirement for metric {metric!r}"
                ) from None
        return self.r2_required

    def fit(self, datasets: dict[str, Dataset]) -> DreamResult:
        """Run Algorithm 1 on time-ordered per-metric datasets.

        All datasets must share the feature matrix shape (they come from
        one :class:`~repro.core.history.ExecutionHistory`).
        """
        if not datasets:
            raise EstimationError("DREAM needs at least one cost metric")
        sizes = {data.size for data in datasets.values()}
        dims = {data.dimension for data in datasets.values()}
        names = {data.feature_names for data in datasets.values()}
        if len(sizes) != 1 or len(dims) != 1 or len(names) != 1:
            raise EstimationError("per-metric datasets must share their feature matrix")
        total = sizes.pop()
        dimension = dims.pop()

        m = minimum_observations(dimension)  # m = L + 2
        if total < m:
            raise EstimationError(
                f"DREAM needs at least {m} observations (L + 2), history has {total}"
            )
        m_max = total if self.max_window is None else min(self.max_window, total)

        models: dict[str, MultipleLinearRegression] = {}
        r2: dict[str, float] = {metric: 0.0 for metric in datasets}

        while True:
            for metric, data in datasets.items():
                model = MultipleLinearRegression()
                window = data.last_window(m)
                model.fit(window.features, window.targets)
                models[metric] = model
                r2[metric] = (
                    model.press_r_squared_
                    if self.r2_mode == "press"
                    else model.r_squared_
                )
            converged = all(
                r2[metric] >= self._required(metric) for metric in datasets
            )
            if converged or m >= m_max:
                ranges = {}
                for metric, data in datasets.items():
                    window_targets = data.last_window(m).targets
                    ranges[metric] = (
                        float(window_targets.min()),
                        float(window_targets.max()),
                    )
                return DreamResult(
                    models=models,
                    window_size=m,
                    r_squared=dict(r2),
                    converged=converged,
                    feature_names=next(iter(datasets.values())).feature_names,
                    target_ranges=ranges,
                )
            m += 1

    def estimate_cost_values(
        self, datasets: dict[str, Dataset], features
    ) -> dict[str, float]:
        """Fit-and-predict in one call (the Algorithm 1 signature)."""
        return self.fit(datasets).predict(features)
