"""DREAM — Dynamic REgression AlgorithM (paper §3, Algorithm 1).

The estimation problem: predict the cost vector ``c_hat_N(p)`` of a query
plan from system features (data sizes, node counts) using Multiple Linear
Regression, choosing *how much* history to train on dynamically.

Algorithm 1, verbatim mapping::

    function EstimateCostValue(R2_require, X, Mmax):
        for n in 1..N: R2_n <- 0                 # one per cost metric
        m = L + 2                                # minimum training size
        while (any R2_n < R2_require_n) and m < Mmax:
            for each cost function c_n:
                fit c_hat_n on the last m observations   # Eq. 6/12
                R2_n = 1 - SSE/SST                        # Eq. 14
            m = m + 1
        return c_hat_N(p)

Because the window grows *backwards from the most recent observation*,
DREAM stops as soon as a small, fresh window already explains the data —
under drift that is typically near ``N = L + 2``, which is both the
accuracy mechanism (stale points never enter) and the speed mechanism
(each of the thousands of equivalent QEPs in Example 3.1 is estimated
from a tiny design matrix).

Two estimators implement the algorithm:

* :class:`DreamEstimator` — the batch reference: every window size is a
  full OLS refit.  Kept as the oracle the incremental engine is verified
  against.
* :class:`OnlineDreamEstimator` — the production hot path.  It binds to
  one :class:`~repro.core.history.ExecutionHistory` and keys its state
  on ``history.version``: consecutive optimizer calls between executions
  reuse the cached fit outright, a version bump folds only the *new*
  observations into per-metric buffers, and the ``m += 1`` widening loop
  grows each metric's window by an O(L^2) rank-one update of the normal
  equations (:class:`~repro.ml.linear.RecursiveLeastSquares`) instead of
  an O(m L^2) refit.

Both estimators freeze a metric's model at its first convergence (its
R^2 met the requirement at window ``m``); later widening steps — forced
by slower metrics — neither refit it nor allow its reported R^2 to drop
back below the threshold.

Batched prediction: :meth:`DreamResult.predict_batch` costs an entire
QEP candidate set (Example 3.1: thousands of equivalent plans) with one
design-matrix multiplication and one vectorised guard-band clamp per
metric, replacing per-plan Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import EstimationError
from repro.common.validation import require, require_in_range
from repro.core.history import ExecutionHistory
from repro.ml.dataset import Dataset
from repro.ml.linear import (
    MultipleLinearRegression,
    RecursiveLeastSquares,
    minimum_observations,
)


@dataclass(frozen=True)
class DreamResult:
    """The outcome of one DREAM fit."""

    models: dict[str, MultipleLinearRegression]
    window_size: int
    r_squared: dict[str, float]
    converged: bool
    feature_names: tuple[str, ...]
    #: Per metric: (min, max) of the training window's targets.  Linear
    #: models extrapolate without bound outside the window's feature
    #: hull; predictions are clamped to a guard band around the observed
    #: cost range (costs are physical quantities — they cannot be
    #: negative, nor orders of magnitude outside recent observations).
    target_ranges: dict[str, tuple[float, float]] = None
    #: Allowed extrapolation beyond the observed range (factor).
    guard_factor: float = 2.0
    #: Per-metric training window (a metric freezes at its first
    #: convergence, so windows differ when some metrics converge late).
    #: ``window_size`` is the largest of these.
    window_sizes: dict[str, int] | None = None

    def predict(self, features) -> dict[str, float]:
        """Predicted cost vector ``c_hat_N(p)`` for one feature vector."""
        x = np.asarray(features, dtype=float).reshape(-1)
        return {metric: self._clamped(metric, x) for metric in self.models}

    def predict_metric(self, metric: str, features) -> float:
        if metric not in self.models:
            raise EstimationError(
                f"unknown metric {metric!r}; fitted: {sorted(self.models)}"
            )
        return self._clamped(metric, np.asarray(features, dtype=float).reshape(-1))

    def _band(self, metric: str) -> tuple[float, float] | None:
        if not self.target_ranges or metric not in self.target_ranges:
            return None
        low, high = self.target_ranges[metric]
        lower = low / self.guard_factor if low > 0 else low * self.guard_factor
        upper = high * self.guard_factor if high > 0 else high / self.guard_factor
        return lower, upper

    def _clamped(self, metric: str, x: np.ndarray) -> float:
        raw = self.models[metric].predict_one(x)
        band = self._band(metric)
        if band is None:
            return raw
        lower, upper = band
        return float(min(max(raw, lower), upper))

    def _design_of(self, features_matrix) -> np.ndarray:
        matrix = np.asarray(features_matrix, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.feature_names):
            raise EstimationError(
                f"expected (n, {len(self.feature_names)}) features, "
                f"got shape {matrix.shape}"
            )
        return np.hstack([np.ones((matrix.shape[0], 1)), matrix])

    def _predict_column(self, metric: str, design: np.ndarray) -> np.ndarray:
        raw = design @ self.models[metric].coefficients_
        band = self._band(metric)
        if band is not None:
            np.clip(raw, band[0], band[1], out=raw)
        return raw

    def predict_metric_batch(self, metric: str, features_matrix) -> np.ndarray:
        """One metric's predictions for all rows: one matmul + one clamp."""
        if metric not in self.models:
            raise EstimationError(
                f"unknown metric {metric!r}; fitted: {sorted(self.models)}"
            )
        return self._predict_column(metric, self._design_of(features_matrix))

    def predict_batch(self, features_matrix) -> dict[str, np.ndarray]:
        """Cost all rows at once: one matmul + one clamp per metric.

        ``features_matrix`` is (n, L); the result maps each metric to an
        (n,) prediction vector, identical (to float precision) to calling
        :meth:`predict` row by row — this is the whole-QEP-set hot path.
        """
        design = self._design_of(features_matrix)
        return {
            metric: self._predict_column(metric, design) for metric in self.models
        }


class DreamEstimator:
    """Implements Algorithm 1 over per-metric datasets (batch oracle).

    Parameters
    ----------
    r2_required:
        The quality threshold ``R^2_require``; either one float for every
        metric or a per-metric mapping.  The paper recommends 0.8 (§3).
    max_window:
        ``Mmax``.  ``None`` allows growth up to the full history.
    """

    def __init__(
        self,
        r2_required: float | dict[str, float] = 0.8,
        max_window: int | None = None,
        r2_mode: str = "press",
    ):
        if isinstance(r2_required, dict):
            for metric, value in r2_required.items():
                require_in_range(value, 0.0, 1.0, f"r2_required[{metric}]")
        else:
            require_in_range(r2_required, 0.0, 1.0, "r2_required")
        self.r2_required = r2_required
        if max_window is not None:
            require(max_window >= 3, f"max_window must be >= 3, got {max_window}")
        self.max_window = max_window
        require(
            r2_mode in ("press", "training"),
            f"r2_mode must be 'press' or 'training', got {r2_mode!r}",
        )
        # "training" is the paper's literal Eq. 14; "press" (default) is
        # its leave-one-out form, which does not saturate at m = L + 2
        # where OLS interpolates (see MultipleLinearRegression docs).
        self.r2_mode = r2_mode

    def _required(self, metric: str) -> float:
        if isinstance(self.r2_required, dict):
            try:
                return self.r2_required[metric]
            except KeyError:
                raise EstimationError(
                    f"no R^2 requirement for metric {metric!r}"
                ) from None
        return self.r2_required

    def _window_bounds(self, dimension: int, total: int) -> tuple[int, int]:
        """Shared Algorithm 1 preamble: (m = L + 2, Mmax), validated.

        ``max_window`` below the statistical minimum is a contract
        violation, not a silent widening: the first window would already
        exceed the user's Mmax.
        """
        m = minimum_observations(dimension)  # m = L + 2
        if total < m:
            raise EstimationError(
                f"DREAM needs at least {m} observations (L + 2), history has {total}"
            )
        if self.max_window is not None and self.max_window < m:
            raise EstimationError(
                f"max_window={self.max_window} is smaller than the minimum "
                f"window L + 2 = {m}; Mmax cannot be honoured"
            )
        m_max = total if self.max_window is None else min(self.max_window, total)
        return m, m_max

    def fit(self, datasets: dict[str, Dataset]) -> DreamResult:
        """Run Algorithm 1 on time-ordered per-metric datasets.

        All datasets must share the feature matrix shape (they come from
        one :class:`~repro.core.history.ExecutionHistory`).
        """
        if not datasets:
            raise EstimationError("DREAM needs at least one cost metric")
        sizes = {data.size for data in datasets.values()}
        dims = {data.dimension for data in datasets.values()}
        names = {data.feature_names for data in datasets.values()}
        if len(sizes) != 1 or len(dims) != 1 or len(names) != 1:
            raise EstimationError("per-metric datasets must share their feature matrix")
        total = sizes.pop()
        dimension = dims.pop()
        m, m_max = self._window_bounds(dimension, total)

        models: dict[str, MultipleLinearRegression] = {}
        r2: dict[str, float] = {metric: 0.0 for metric in datasets}
        window_sizes: dict[str, int] = {}
        ranges: dict[str, tuple[float, float]] = {}
        pending = set(datasets)

        while True:
            for metric, data in datasets.items():
                if metric not in pending:
                    continue  # frozen at its first convergence
                model = MultipleLinearRegression()
                window = data.last_window(m)
                model.fit(window.features, window.targets)
                models[metric] = model
                r2[metric] = (
                    model.press_r_squared_
                    if self.r2_mode == "press"
                    else model.r_squared_
                )
                if r2[metric] >= self._required(metric):
                    pending.discard(metric)
                    window_sizes[metric] = m
                    ranges[metric] = (
                        float(window.targets.min()),
                        float(window.targets.max()),
                    )
            converged = not pending
            if converged or m >= m_max:
                for metric in pending:  # stragglers stop at the final m
                    window_targets = datasets[metric].last_window(m).targets
                    window_sizes[metric] = m
                    ranges[metric] = (
                        float(window_targets.min()),
                        float(window_targets.max()),
                    )
                return DreamResult(
                    models=models,
                    window_size=m,
                    r_squared=dict(r2),
                    converged=converged,
                    feature_names=next(iter(datasets.values())).feature_names,
                    target_ranges=ranges,
                    window_sizes=window_sizes,
                )
            m += 1

    def estimate_cost_values(
        self, datasets: dict[str, Dataset], features
    ) -> dict[str, float]:
        """Fit-and-predict in one call (the Algorithm 1 signature)."""
        return self.fit(datasets).predict(features)


class OnlineDreamEstimator(DreamEstimator):
    """Incremental Algorithm 1 bound to one execution history.

    Semantically identical to :class:`DreamEstimator` (same window
    choice, same models, verified to 1e-6 by the equivalence tests), but
    engineered for the optimizer hot path:

    * **Version cache** — ``fit`` is keyed by ``history.version``; any
      number of optimizer calls between executions return the cached
      :class:`DreamResult` without touching the data.
    * **Incremental ingest** — a version bump folds only the
      observations appended since the last call into flat numpy buffers
      (the history is append-only, so earlier rows never change).
    * **Rank-one widening** — each ``m += 1`` step updates the per-metric
      :class:`~repro.ml.linear.RecursiveLeastSquares` state in O(L^2),
      and the PRESS statistic rides along incrementally
      (``track_press=True``): its leverages and residuals are carried by
      the same rank-one identities, so the whole step is O(L^2 + m)
      rather than an O(m L^2) hat-matrix pass.

    An estimator instance holds state for exactly one history; passing a
    different history object resets it.
    """

    def __init__(
        self,
        r2_required: float | dict[str, float] = 0.8,
        max_window: int | None = None,
        r2_mode: str = "press",
    ):
        super().__init__(r2_required, max_window, r2_mode)
        self._history: ExecutionHistory | None = None
        self._seen = 0
        self._features = np.zeros((0, 0))
        self._metric_targets: dict[str, np.ndarray] = {}
        self._cached: tuple[int, DreamResult] | None = None

    def reset(self) -> None:
        self._history = None
        self._seen = 0
        self._features = np.zeros((0, 0))
        self._metric_targets = {}
        self._cached = None

    # Ingest ---------------------------------------------------------------

    def _fold_new(self, history: ExecutionHistory) -> None:
        """Append only the observations newer than the last fold."""
        total = history.size
        fresh = history.observations[self._seen : total]
        if not fresh:
            return
        names = history.feature_names
        rows = np.array(
            [[obs.features[name] for name in names] for obs in fresh], dtype=float
        ).reshape(len(fresh), len(names))
        self._features = (
            rows if self._seen == 0 else np.vstack([self._features, rows])
        )
        for metric in history.metric_names:
            new = np.array([obs.costs[metric] for obs in fresh], dtype=float)
            old = self._metric_targets.get(metric)
            self._metric_targets[metric] = (
                new if old is None else np.concatenate([old, new])
            )
        self._seen = total

    # Fit ------------------------------------------------------------------

    def fit(self, history: ExecutionHistory) -> DreamResult:  # type: ignore[override]
        """Algorithm 1, reusing all state valid for ``history.version``."""
        if self._history is not None and self._history is not history:
            self.reset()
        self._history = history
        version = history.version
        if self._cached is not None and self._cached[0] == version:
            return self._cached[1]
        self._fold_new(history)
        result = self._search(history)
        self._cached = (version, result)
        return result

    def _search(self, history: ExecutionHistory) -> DreamResult:
        metrics = history.metric_names
        total = self._seen
        dimension = len(history.feature_names)
        m, m_max = self._window_bounds(dimension, total)

        X = self._features
        states: dict[str, RecursiveLeastSquares] = {}
        mins: dict[str, float] = {}
        maxs: dict[str, float] = {}
        track_press = self.r2_mode == "press"
        for metric in metrics:
            rls = RecursiveLeastSquares(dimension, track_press=track_press)
            y = self._metric_targets[metric]
            for i in range(total - m, total):
                rls.update(X[i], y[i])
            states[metric] = rls
            window = y[total - m : total]
            mins[metric] = float(window.min())
            maxs[metric] = float(window.max())

        models: dict[str, MultipleLinearRegression] = {}
        r2: dict[str, float] = {metric: 0.0 for metric in metrics}
        window_sizes: dict[str, int] = {}
        ranges: dict[str, tuple[float, float]] = {}
        pending = set(metrics)

        while True:
            for metric in metrics:
                if metric not in pending:
                    continue
                rls = states[metric]
                window_x = X[total - m : total]
                window_y = self._metric_targets[metric][total - m : total]
                if rls.well_conditioned():
                    if self.r2_mode == "press":
                        # Rank-one PRESS: the leverages/residuals were
                        # carried through each update, so this is O(m)
                        # instead of a fresh O(m L^2) hat-matrix pass.
                        score = rls.press_r_squared_tracked()
                        models[metric] = rls.as_model(press_r_squared=score)
                    else:
                        score = rls.r_squared
                        models[metric] = rls.as_model()
                else:
                    # Rank-deficient window: the normal-equation shortcut
                    # loses too many digits; take the oracle's exact path
                    # (full refit) for this window so incremental and
                    # batch stay equivalent.  The RLS statistics keep
                    # accumulating for later, better-conditioned windows.
                    model = MultipleLinearRegression()
                    model.fit(window_x, window_y)
                    models[metric] = model
                    score = (
                        model.press_r_squared_
                        if self.r2_mode == "press"
                        else model.r_squared_
                    )
                r2[metric] = score
                if score >= self._required(metric):
                    pending.discard(metric)
                    window_sizes[metric] = m
                    ranges[metric] = (mins[metric], maxs[metric])
            converged = not pending
            if converged or m >= m_max:
                for metric in pending:
                    window_sizes[metric] = m
                    ranges[metric] = (mins[metric], maxs[metric])
                return DreamResult(
                    models=models,
                    window_size=m,
                    r_squared=dict(r2),
                    converged=converged,
                    feature_names=history.feature_names,
                    target_ranges=ranges,
                    window_sizes=window_sizes,
                )
            m += 1
            oldest = total - m  # the one older row the wider window adds
            for metric in pending:
                y = float(self._metric_targets[metric][oldest])
                states[metric].update(X[oldest], y)
                mins[metric] = min(mins[metric], y)
                maxs[metric] = max(maxs[metric], y)

    def estimate_cost_values(  # type: ignore[override]
        self, history: ExecutionHistory, features
    ) -> dict[str, float]:
        """Fit-and-predict in one call (the Algorithm 1 signature)."""
        return self.fit(history).predict(features)
