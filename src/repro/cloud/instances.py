"""Instance catalogs with the paper's Table 1 prices.

The Amazon ``a1.*`` and Microsoft ``B*`` rows reproduce Table 1 of the
paper **verbatim** (vCPU, memory, storage, hourly price).  Amazon prices
exclude storage (EBS-only); Microsoft prices include local storage — the
asymmetry the paper calls out ("the price of Amazon is without storage").
A Google catalog is included for the three-provider federation of Figure 1;
it is not part of Table 1 and is flagged as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.provider import CloudProvider
from repro.common.errors import CloudError


@dataclass(frozen=True)
class InstanceType:
    """One virtual-machine offering of a provider."""

    provider: CloudProvider
    name: str
    vcpus: int
    memory_gib: float
    storage_gib: float | None  # None => remote/EBS-only storage
    price_per_hour: float

    @property
    def storage_description(self) -> str:
        return "EBS-Only" if self.storage_gib is None else f"{self.storage_gib:g}"

    @property
    def includes_storage(self) -> bool:
        return self.storage_gib is not None

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.provider.value}:{self.name}"


def _amazon(name: str, vcpus: int, memory: float, price: float) -> InstanceType:
    return InstanceType(CloudProvider.AMAZON, name, vcpus, memory, None, price)


def _microsoft(name: str, vcpus: int, memory: float, storage: float, price: float) -> InstanceType:
    return InstanceType(CloudProvider.MICROSOFT, name, vcpus, memory, storage, price)


def _google(name: str, vcpus: int, memory: float, storage: float, price: float) -> InstanceType:
    return InstanceType(CloudProvider.GOOGLE, name, vcpus, memory, storage, price)


#: Paper Table 1, Amazon block (prices exclude storage).
AMAZON_INSTANCES: tuple[InstanceType, ...] = (
    _amazon("a1.medium", 1, 2, 0.0049),
    _amazon("a1.large", 2, 4, 0.0098),
    _amazon("a1.xlarge", 4, 8, 0.0197),
    _amazon("a1.2xlarge", 8, 16, 0.0394),
    _amazon("a1.4xlarge", 16, 32, 0.0788),
)

#: Paper Table 1, Microsoft block (prices include local storage).
MICROSOFT_INSTANCES: tuple[InstanceType, ...] = (
    _microsoft("B1S", 1, 1, 2, 0.011),
    _microsoft("B1MS", 1, 2, 4, 0.021),
    _microsoft("B2S", 2, 4, 8, 0.042),
    _microsoft("B2MS", 2, 8, 16, 0.084),
    _microsoft("B4MS", 4, 16, 32, 0.166),
    _microsoft("B8MS", 8, 32, 64, 0.333),
)

#: Google catalog for the Figure 1 federation (NOT part of Table 1).
GOOGLE_INSTANCES: tuple[InstanceType, ...] = (
    _google("n1-standard-1", 1, 3.75, 10, 0.0475),
    _google("n1-standard-2", 2, 7.5, 20, 0.0950),
    _google("n1-standard-4", 4, 15, 40, 0.1900),
    _google("n1-standard-8", 8, 30, 80, 0.3800),
)

#: Exactly the rows of the paper's Table 1, in its order.
PAPER_TABLE1_CATALOG: tuple[InstanceType, ...] = AMAZON_INSTANCES + MICROSOFT_INSTANCES

_ALL = {
    CloudProvider.AMAZON: AMAZON_INSTANCES,
    CloudProvider.MICROSOFT: MICROSOFT_INSTANCES,
    CloudProvider.GOOGLE: GOOGLE_INSTANCES,
}


def instance_catalog(provider: CloudProvider) -> tuple[InstanceType, ...]:
    """All instance types offered by ``provider``."""
    return _ALL[provider]


def find_instance(provider: CloudProvider, name: str) -> InstanceType:
    """Look up one instance type by provider and name."""
    for instance in _ALL[provider]:
        if instance.name.lower() == name.lower():
            return instance
    known = ", ".join(i.name for i in _ALL[provider])
    raise CloudError(f"{provider.value} has no instance {name!r}; known: {known}")
