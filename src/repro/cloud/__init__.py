"""Cloud federation substrate.

Models what the paper's experiments run *on*: cloud service providers with
pay-as-you-go instance catalogs (the paper's Table 1 prices, verbatim),
wide-area networking between clouds, provisioned clusters, and the load
variability that makes cost estimation in a federation hard.
"""

from repro.cloud.provider import CloudProvider, Region
from repro.cloud.instances import (
    InstanceType,
    AMAZON_INSTANCES,
    MICROSOFT_INSTANCES,
    GOOGLE_INSTANCES,
    PAPER_TABLE1_CATALOG,
    instance_catalog,
    find_instance,
)
from repro.cloud.pricing import BillingPolicy, PricingModel
from repro.cloud.network import NetworkModel, LinkSpec
from repro.cloud.vm import Cluster, VirtualMachine
from repro.cloud.federation import CloudFederation, CloudSite
from repro.cloud.variability import (
    Ar1LoadProcess,
    CompositeLoadProcess,
    ConstantLoad,
    DiurnalLoadProcess,
    LoadProcess,
    RegimeShiftProcess,
)

__all__ = [
    "CloudProvider",
    "Region",
    "InstanceType",
    "AMAZON_INSTANCES",
    "MICROSOFT_INSTANCES",
    "GOOGLE_INSTANCES",
    "PAPER_TABLE1_CATALOG",
    "instance_catalog",
    "find_instance",
    "BillingPolicy",
    "PricingModel",
    "NetworkModel",
    "LinkSpec",
    "Cluster",
    "VirtualMachine",
    "CloudFederation",
    "CloudSite",
    "Ar1LoadProcess",
    "CompositeLoadProcess",
    "ConstantLoad",
    "DiurnalLoadProcess",
    "LoadProcess",
    "RegimeShiftProcess",
]
