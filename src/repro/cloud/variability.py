"""Load-variability processes.

The premise of DREAM is that a cloud federation's performance drifts:
machine load evolves, networks congest, co-tenants come and go.  Each
process here produces a multiplicative *load factor* as a function of a
discrete time index (one tick per executed query); a factor of 1.0 is the
nominal environment and 2.0 means everything takes twice as long.

Old observations become "expired information" precisely because the
factor at training time differs from the factor at prediction time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.rng import RngStream
from repro.common.validation import require, require_positive


class LoadProcess:
    """Base class: a deterministic-under-seed sequence of load factors."""

    def factor(self, tick: int) -> float:
        """The load multiplier at ``tick`` (>= some floor > 0)."""
        raise NotImplementedError

    def series(self, ticks: int) -> list[float]:
        return [self.factor(t) for t in range(ticks)]


class ConstantLoad(LoadProcess):
    """No drift: the environment never changes (ablation baseline)."""

    def __init__(self, value: float = 1.0):
        self._value = require_positive(value, "value")

    def factor(self, tick: int) -> float:
        return self._value


class Ar1LoadProcess(LoadProcess):
    """Mean-reverting AR(1) random walk in log space.

    ``log L(t) = phi * log L(t-1) + e_t`` with ``e_t ~ N(0, sigma^2)``.
    ``phi`` close to 1 gives slowly wandering load — the regime where a
    window of recent history is informative but old history misleads.
    """

    def __init__(self, rng: RngStream, phi: float = 0.98, sigma: float = 0.06,
                 floor: float = 0.25):
        require(0.0 <= phi < 1.0, f"phi must be in [0, 1), got {phi}")
        self._phi = phi
        self._sigma = require_positive(sigma, "sigma")
        self._floor = floor
        self._values: list[float] = []
        self._rng = rng

    def factor(self, tick: int) -> float:
        while len(self._values) <= tick:
            previous = self._values[-1] if self._values else 0.0
            shock = float(self._rng.normal(0.0, self._sigma))
            self._values.append(self._phi * previous + shock)
        return max(self._floor, math.exp(self._values[tick]))


class DiurnalLoadProcess(LoadProcess):
    """Sinusoidal day/night load: peak-hour contention, quiet nights."""

    def __init__(self, period_ticks: int = 200, amplitude: float = 0.3,
                 phase: float = 0.0):
        self._period = require_positive(period_ticks, "period_ticks")
        require(0 <= amplitude < 1, f"amplitude must be in [0, 1), got {amplitude}")
        self._amplitude = amplitude
        self._phase = phase

    def factor(self, tick: int) -> float:
        angle = 2 * math.pi * (tick / self._period) + self._phase
        return 1.0 + self._amplitude * math.sin(angle)


class RegimeShiftProcess(LoadProcess):
    """Occasional abrupt regime changes (e.g. a co-tenant arrives).

    Holds a level for a geometric-distributed number of ticks, then jumps
    to a new level.  This is the harshest case for long observation
    windows: everything before the last shift is expired.
    """

    def __init__(self, rng: RngStream, mean_regime_length: int = 150,
                 low: float = 0.7, high: float = 2.2):
        self._rng = rng
        self._mean_length = require_positive(mean_regime_length, "mean_regime_length")
        self._low = low
        self._high = high
        self._levels: list[float] = []

    def factor(self, tick: int) -> float:
        while len(self._levels) <= tick:
            if not self._levels or self._rng.random() < 1.0 / self._mean_length:
                level = float(self._rng.uniform(self._low, self._high))
            else:
                level = self._levels[-1]
            self._levels.append(level)
        return self._levels[tick]


class CompositeLoadProcess(LoadProcess):
    """Product of component processes (drift x diurnal x shifts)."""

    def __init__(self, components: list[LoadProcess]):
        require(len(components) > 0, "CompositeLoadProcess needs components")
        self._components = list(components)

    def factor(self, tick: int) -> float:
        product = 1.0
        for component in self._components:
            product *= component.factor(tick)
        return product


def default_federation_load(rng: RngStream) -> LoadProcess:
    """The drift scenario used by the paper-shaped experiments.

    A slowly wandering AR(1) load with a mild diurnal cycle and occasional
    regime shifts — enough variance that full-history models mislead while
    a recent window stays informative.
    """
    return CompositeLoadProcess(
        [
            # Within a fresh window the environment is near-constant
            # (mild AR(1) wander, gentle diurnal slope); across a longer
            # history, co-tenant regime shifts make old observations
            # outright misleading — the paper's "expired information".
            Ar1LoadProcess(rng.child("ar1"), phi=0.97, sigma=0.03),
            DiurnalLoadProcess(period_ticks=120, amplitude=0.10),
            RegimeShiftProcess(
                rng.child("regime"), mean_regime_length=50, low=0.55, high=2.4
            ),
        ]
    )
