"""Cloud service providers and regions.

The federation in the paper spans Amazon Web Services, Microsoft Azure and
Google Cloud Platform (Figure 1).  Providers are plain value objects; their
catalogs live in :mod:`repro.cloud.instances` and their connectivity in
:mod:`repro.cloud.network`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CloudProvider(enum.Enum):
    """The providers in the paper's federation (Figure 1 / Table 1)."""

    AMAZON = "Amazon"
    MICROSOFT = "Microsoft"
    GOOGLE = "Google"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass(frozen=True)
class Region:
    """A provider region (used to scale WAN distance between sites)."""

    provider: CloudProvider
    name: str
    #: Abstract geographic coordinate used to derive WAN latency; not a
    #: real lat/long, just a 1-D position on a ring (milliseconds of
    #: one-way latency to the origin).
    position_ms: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.provider.value}/{self.name}"
