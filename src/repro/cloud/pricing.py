"""Pay-as-you-go pricing.

Computes the monetary cost of running a cluster for a duration, plus data
charges.  Two billing policies are modelled: classic **per-hour** rounding
(every started hour is billed — what the paper's Table 1 prices imply) and
modern **per-second** billing with a minimum charge.  Egress between
providers is billed per GiB; intra-provider traffic is billed at a reduced
rate; storage is billed per GiB-month and pro-rated.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.cloud.vm import Cluster
from repro.common.units import GIB, HOURS
from repro.common.validation import require, require_positive


class BillingPolicy(enum.Enum):
    PER_HOUR = "per-hour"
    PER_SECOND = "per-second"


@dataclass(frozen=True)
class PricingModel:
    """Provider-independent price computation over catalog prices."""

    billing: BillingPolicy = BillingPolicy.PER_SECOND
    minimum_billed_seconds: float = 60.0
    inter_cloud_egress_per_gib: float = 0.09
    intra_cloud_egress_per_gib: float = 0.01
    storage_per_gib_month: float = 0.10

    def compute_cost(self, cluster: Cluster, duration_s: float) -> float:
        """Cost of holding ``cluster`` for ``duration_s`` seconds."""
        require(duration_s >= 0, f"duration_s must be >= 0, got {duration_s}")
        if self.billing is BillingPolicy.PER_HOUR:
            hours = math.ceil(duration_s / HOURS) if duration_s > 0 else 0
            return cluster.price_per_hour * hours
        billed = max(duration_s, self.minimum_billed_seconds) if duration_s > 0 else 0.0
        return cluster.price_per_hour * billed / HOURS

    def egress_cost(self, transferred_bytes: float, crosses_provider: bool) -> float:
        """Cost of moving ``transferred_bytes`` out of a cloud."""
        rate = (
            self.inter_cloud_egress_per_gib
            if crosses_provider
            else self.intra_cloud_egress_per_gib
        )
        return max(0.0, transferred_bytes) / GIB * rate

    def storage_cost(self, stored_bytes: float, duration_s: float) -> float:
        """Pro-rated object/block storage cost."""
        months = duration_s / (30 * 24 * HOURS)
        return max(0.0, stored_bytes) / GIB * self.storage_per_gib_month * months

    def query_cost(
        self,
        clusters: list[Cluster],
        duration_s: float,
        inter_cloud_bytes: float = 0.0,
        intra_cloud_bytes: float = 0.0,
    ) -> float:
        """Total monetary cost of one query execution.

        Every participating cluster is held for the query's duration (the
        engines are provisioned together, as IReS does), plus egress for
        the data moved between engines.
        """
        compute = sum(self.compute_cost(c, duration_s) for c in clusters)
        egress = self.egress_cost(inter_cloud_bytes, crosses_provider=True)
        egress += self.egress_cost(intra_cloud_bytes, crosses_provider=False)
        return compute + egress
