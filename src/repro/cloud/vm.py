"""Virtual machines and clusters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import InstanceType
from repro.common.errors import CloudError
from repro.common.validation import require_positive


@dataclass(frozen=True)
class VirtualMachine:
    """One provisioned VM."""

    instance_type: InstanceType
    vm_id: str


@dataclass(frozen=True)
class Cluster:
    """A homogeneous group of VMs at one site.

    The QEP decision space of the paper's Example 3.1 is exactly the space
    of (vcpus, memory) configurations a cluster can take; in our model that
    is (instance type, node count).
    """

    site_name: str
    instance_type: InstanceType
    node_count: int

    def __post_init__(self):
        if self.node_count < 1:
            raise CloudError(f"cluster needs >= 1 node, got {self.node_count}")

    @property
    def total_vcpus(self) -> int:
        return self.instance_type.vcpus * self.node_count

    @property
    def total_memory_gib(self) -> float:
        return self.instance_type.memory_gib * self.node_count

    @property
    def price_per_hour(self) -> float:
        return self.instance_type.price_per_hour * self.node_count

    def resized(self, node_count: int) -> "Cluster":
        return Cluster(self.site_name, self.instance_type, node_count)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.node_count}x {self.instance_type} @ {self.site_name}"
