"""Networking between federation sites.

The paper repeatedly stresses "wide-range communications" as a source of
cost and variance.  The model here is a link matrix: every ordered pair of
sites has a bandwidth and a round-trip latency, defaulting to LAN numbers
inside a site, fast-WAN inside a provider, and slow-WAN across providers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.provider import Region
from repro.common.errors import CloudError
from repro.common.units import MIB
from repro.common.validation import require_positive


@dataclass(frozen=True)
class LinkSpec:
    """One directed link: sustainable bandwidth and round-trip latency."""

    bandwidth_bytes_per_s: float
    rtt_s: float

    def transfer_time(self, payload_bytes: float) -> float:
        """Seconds to push ``payload_bytes`` over this link."""
        if payload_bytes <= 0:
            return 0.0
        return self.rtt_s + payload_bytes / self.bandwidth_bytes_per_s


#: Defaults, loosely calibrated to public cloud measurements.
LOCAL_LINK = LinkSpec(bandwidth_bytes_per_s=1200 * MIB, rtt_s=0.0002)
INTRA_PROVIDER_LINK = LinkSpec(bandwidth_bytes_per_s=250 * MIB, rtt_s=0.012)
INTER_PROVIDER_LINK = LinkSpec(bandwidth_bytes_per_s=40 * MIB, rtt_s=0.080)


class NetworkModel:
    """Resolves the link between two sites.

    Custom links can be installed per ordered site pair; otherwise the
    class falls back to defaults based on whether the two sites share a
    site name (local), a provider (intra-provider WAN) or nothing
    (inter-provider WAN).  Distance between regions adds latency.
    """

    def __init__(self):
        self._overrides: dict[tuple[str, str], LinkSpec] = {}

    def set_link(self, from_site: str, to_site: str, link: LinkSpec) -> None:
        self._overrides[(from_site.lower(), to_site.lower())] = link

    def link(
        self,
        from_site: str,
        to_site: str,
        from_region: Region | None = None,
        to_region: Region | None = None,
    ) -> LinkSpec:
        override = self._overrides.get((from_site.lower(), to_site.lower()))
        if override is not None:
            return override
        if from_site.lower() == to_site.lower():
            return LOCAL_LINK
        if from_region is not None and to_region is not None:
            base = (
                INTRA_PROVIDER_LINK
                if from_region.provider == to_region.provider
                else INTER_PROVIDER_LINK
            )
            distance_s = abs(from_region.position_ms - to_region.position_ms) / 1000.0
            return LinkSpec(base.bandwidth_bytes_per_s, base.rtt_s + 2 * distance_s)
        return INTER_PROVIDER_LINK

    def transfer_time(
        self,
        payload_bytes: float,
        from_site: str,
        to_site: str,
        from_region: Region | None = None,
        to_region: Region | None = None,
    ) -> float:
        return self.link(from_site, to_site, from_region, to_region).transfer_time(
            payload_bytes
        )
