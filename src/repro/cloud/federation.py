"""The cloud federation: sites, catalogs, network and provisioning."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.instances import InstanceType, find_instance, instance_catalog
from repro.cloud.network import LinkSpec, NetworkModel
from repro.cloud.pricing import PricingModel
from repro.cloud.provider import CloudProvider, Region
from repro.cloud.vm import Cluster
from repro.common.errors import CloudError


@dataclass(frozen=True)
class CloudSite:
    """One member of the federation: a region of a provider.

    In the paper's scenario, "cloud A" hosts the Hive engine with the
    Patient table and "cloud B" hosts PostgreSQL with GeneralInfo.
    """

    name: str
    region: Region

    @property
    def provider(self) -> CloudProvider:
        return self.region.provider


class CloudFederation:
    """A set of interconnected cloud sites with shared pricing/networking."""

    def __init__(self, pricing: PricingModel | None = None,
                 network: NetworkModel | None = None):
        self._sites: dict[str, CloudSite] = {}
        self.pricing = pricing or PricingModel()
        self.network = network or NetworkModel()

    # Site management ----------------------------------------------------

    def add_site(self, name: str, provider: CloudProvider,
                 region_name: str = "default", position_ms: float = 0.0) -> CloudSite:
        key = name.lower()
        if key in self._sites:
            raise CloudError(f"site {name!r} already in federation")
        site = CloudSite(name, Region(provider, region_name, position_ms))
        self._sites[key] = site
        return site

    def site(self, name: str) -> CloudSite:
        try:
            return self._sites[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._sites)) or "<none>"
            raise CloudError(f"unknown site {name!r}; federation has: {known}") from None

    def sites(self) -> list[CloudSite]:
        return list(self._sites.values())

    # Provisioning ---------------------------------------------------------

    def provision(self, site_name: str, instance_name: str, node_count: int) -> Cluster:
        """Provision a homogeneous cluster at a site."""
        site = self.site(site_name)
        instance = find_instance(site.provider, instance_name)
        return Cluster(site.name, instance, node_count)

    def catalog(self, site_name: str) -> tuple[InstanceType, ...]:
        return instance_catalog(self.site(site_name).provider)

    # Networking -----------------------------------------------------------

    def link(self, from_site: str, to_site: str) -> LinkSpec:
        a = self.site(from_site)
        b = self.site(to_site)
        return self.network.link(a.name, b.name, a.region, b.region)

    def transfer_time(self, payload_bytes: float, from_site: str, to_site: str) -> float:
        return self.link(from_site, to_site).transfer_time(payload_bytes)

    def crosses_provider(self, from_site: str, to_site: str) -> bool:
        return self.site(from_site).provider != self.site(to_site).provider


def paper_federation() -> CloudFederation:
    """The two-site federation of the paper's Example 2.1.

    Cloud A (Amazon) runs Hive; cloud B (Microsoft) runs PostgreSQL.  A
    Google site is included for the three-provider architecture of
    Figure 1 but is unused by the core experiments.
    """
    federation = CloudFederation()
    federation.add_site("cloud-a", CloudProvider.AMAZON, "eu-west-1", position_ms=0.0)
    federation.add_site("cloud-b", CloudProvider.MICROSOFT, "west-europe", position_ms=8.0)
    federation.add_site("cloud-c", CloudProvider.GOOGLE, "europe-west1", position_ms=5.0)
    return federation
