"""Command-line entry point: the gateway demo + paper artifacts.

Installed as the ``repro`` console script (``python -m repro`` works
without installing).  Usage::

    repro demo [--quick] [--serving-backend threaded|sharded]
               [--shard-workers N]       # drive the federation gateway
               [--ingest-batch N] [--ingest-flush-ms MS]  # batched front door
               [--rebalance]             # elastic shard topology walkthrough
               [--policy]                # governance plane + audit walkthrough
    repro list                           # what can be reproduced
    repro table1                         # instance pricing (verbatim)
    repro table2                         # MLR R^2 vs window size
    repro table3 [--quick]               # MRE, TPC-H 100 MiB
    repro table4 [--quick]               # MRE, TPC-H 1 GiB
    repro figure3                        # GA+Pareto vs WSM pipelines
    repro example31                      # 18,200-configuration space

``--quick`` shrinks the MRE experiments (1 seed, 2 queries) to ~15 s and
the demo's profiling phase to a handful of runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_example31,
    format_figure3,
    format_mre_table,
    format_table1,
    format_table2,
    run_example31,
    run_figure3,
    run_mre_experiment,
    run_table1,
    run_table2,
)
from repro.experiments.mre import MreExperimentConfig

ARTIFACTS = ("table1", "table2", "table3", "table4", "figure3", "example31")


def run_demo(
    quick: bool = False,
    serving_backend: str = "threaded",
    shard_workers: int | None = None,
    ingest_batch: int | None = None,
    ingest_flush_ms: float | None = None,
    rebalance: bool = False,
    policy: bool = False,
) -> int:
    """Drive the federation gateway end to end on the MIDAS setup.

    Builds the two-cloud medical federation, profiles Example 2.1
    through typed ``observe`` envelopes, submits one query, then runs a
    pinned-session policy sweep (one model snapshot, one enumeration)
    and prints the serving-layer counters.  ``--serving-backend
    sharded`` routes every model fit through the shared-nothing worker
    pool instead of the in-process service (identical predictions, no
    GIL contention between tenants).  ``--ingest-batch N`` adds a
    batched front-door burst — coalesced ``ingest()`` + ``drain()``
    with the size watermark at ``N``, streaming per-segment ticket
    resolution, a done-callback consumer, and an awaited
    ``ingest_async``/``drain_async`` round — and prints the admission,
    backpressure and streaming counters from the serving report.  ``--rebalance``
    (implies the sharded backend) warms a second template into a skewed
    load, runs one elastic-topology control cycle and prints the typed
    ``TopologyReport`` — routing table version, per-shard load
    accounting, applied migrations.  ``--policy`` turns on the
    governance plane: declarative site-level rules enforced inside QEP
    enumeration, identity-scoped denials, and the hash-chained audit
    log (with a live tamper-detection check).
    """
    from dataclasses import replace

    from repro.federation import SubmitRequest
    from repro.ires.policy import UserPolicy
    from repro.midas import MidasSystem
    from repro.midas.system import DEFAULT_CONFIG

    runs = 12 if quick else 30
    key = "medical-demographics"
    overrides = {}
    clinician = None
    if policy:
        from repro.federation import DataPolicy, GovernanceConfig, Principal

        clinician = Principal("dr-adams", "clinician", "cloud-a")
        overrides["governance"] = GovernanceConfig(
            policies=(
                DataPolicy("patient", "cloud-a", "restricted"),
                DataPolicy("*", "cloud-b", "deny", roles=("researcher",)),
            ),
            require_identity=True,
        )
    if rebalance:
        if serving_backend != "sharded":
            print("--rebalance requires the sharded backend; enabling it.")
            serving_backend = "sharded"
        from repro.federation import RebalanceConfig

        overrides["rebalance"] = RebalanceConfig(max_moves=2)
    if ingest_batch is not None:
        overrides["ingest_batch_max"] = ingest_batch
        # Streaming demo mode: tickets resolve in quarter-watermark
        # segments, with the next segment's safe prefits overlapped.
        overrides["ingest_segment_max"] = max(1, ingest_batch // 4)
        overrides["ingest_pipeline"] = True
    if ingest_flush_ms is not None:
        overrides["ingest_flush_ms"] = ingest_flush_ms
    config = replace(
        DEFAULT_CONFIG,
        serving_backend=serving_backend,
        shard_workers=shard_workers,
        **overrides,
    )
    print("Building the MIDAS federation gateway (Amazon/Hive + Azure/PostgreSQL)...")
    midas = MidasSystem(patient_count=400 if quick else 1500, seed=7, config=config)
    gateway = midas.gateway
    print(f"Registered templates: {', '.join(gateway.templates())}")
    serving = gateway.serving_report()
    if serving.workers:
        print(
            f"Serving backend: {serving.backend} "
            f"({serving.workers} shard worker processes)"
        )

    print(f"Profiling {runs} exploratory executions of Example 2.1...")
    midas.warm_up(key, runs=runs, principal=clinician)

    report = gateway.submit(
        SubmitRequest(
            key,
            {"min_age": 40},
            UserPolicy(weights=(0.6, 0.4)),
            principal=clinician,
        )
    )
    fallback = " (exact fell back: space > exact_limit)" if report.moqp_exact_fallback else ""
    print()
    print(f"QEP space      : {report.candidate_count} candidate plans")
    print(f"MOQP algorithm : {report.moqp_algorithm}{fallback}")
    print(f"Chosen QEP     : {report.describe()}")
    print(
        "Measured       : "
        + ", ".join(f"{m}={v:.4g}" for m, v in report.measured_costs.items())
    )
    print(
        "Relative error : "
        + ", ".join(f"{m}={v:.1%}" for m, v in report.errors.items())
    )

    print()
    print("Pinned-session policy sweep (one model snapshot, one enumeration):")
    weights = ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0))
    with gateway.session(key) as session:
        batch = session.submit_many(
            [
                SubmitRequest(
                    key, {"min_age": 40}, UserPolicy(weights=w), principal=clinician
                )
                for w in weights
            ],
            execute=False,
        )
    for w, item in zip(weights, batch):
        print(f"  weights={w}: {item.describe()}")
    print(f"  enumerations performed: {batch.enumerations} (batch of {len(batch)})")

    if ingest_batch is not None:
        import asyncio

        from repro.common.rng import RngStream
        from repro.federation import BatchObserveRequest, ObserveRequest
        from repro.midas import MEDICAL_QUERIES

        rng = RngStream(11, "demo-ingest")
        template = MEDICAL_QUERIES[key]
        burst = 2 * ingest_batch
        print()
        print(
            f"Front-door ingest burst: {burst} observes in 8-row batch "
            f"envelopes (size watermark at {ingest_batch}, streaming "
            f"segments of {config.ingest_segment_max})..."
        )
        rows = tuple(
            ObserveRequest(key, template.sample_params(rng), principal=clinician)
            for _ in range(burst)
        )
        tickets = []
        for start in range(0, burst, 8):
            tickets.extend(
                gateway.ingest(BatchObserveRequest(key, rows[start : start + 8]))
            )
        # Streaming consumption: a done-callback on the first pending
        # ticket records how much of the flush was still outstanding
        # when its segment resolved.
        stream_note = {}
        pending = [t for t in tickets if not t.done]
        if pending:
            pending[0].add_done_callback(
                lambda _t: stream_note.setdefault(
                    "left", sum(1 for t in tickets if not t.done)
                )
            )
        batch = gateway.drain()
        if len(batch):
            print(
                f"  drained batch #{batch.seq}: {len(batch)} items, "
                f"failed={batch.failed}, fit_rounds={batch.fit_rounds}"
            )
        else:
            print(
                f"  queue empty at drain: all {burst} items went out "
                f"through {batch.seq} watermark flushes"
            )
        istats = gateway.ingest_stats()
        print(
            f"  admission    : admitted={istats.admitted} "
            f"(submits={istats.submits}, observes={istats.observes}), "
            f"peak_depth={istats.peak_depth}, pending={istats.pending}"
        )
        print(
            f"  backpressure : rejected={istats.rejected}, "
            f"blocked={istats.blocked}, "
            f"self-help flushes={istats.backpressure_flushes} "
            f"(overflow={config.ingest_overflow!r}, "
            f"queue_depth={config.ingest_queue_depth})"
        )
        print(
            f"  flushes      : {istats.flushes} total "
            f"(size={istats.size_flushes}, interval={istats.interval_flushes}, "
            f"drain={istats.drain_flushes}), fit_rounds={istats.fit_rounds}, "
            f"max_batch={istats.max_batch}"
        )
        print(
            f"  streaming    : {istats.segments} segments, "
            f"{istats.streamed_items} items resolved mid-flush"
        )
        if "left" in stream_note:
            print(
                f"  streaming    : first pending ticket resolved with "
                f"{stream_note['left']} items still in flight"
            )

        async def async_burst():
            tasks = [
                asyncio.ensure_future(
                    gateway.ingest_async(
                        ObserveRequest(
                            key, template.sample_params(rng), principal=clinician
                        )
                    )
                )
                for _ in range(8)
            ]
            await gateway.drain_async()
            return await asyncio.gather(*tasks)

        reports = asyncio.run(async_burst())
        print(
            f"  asyncio      : awaited {len(reports)} ingest_async reports "
            f"(ticks {reports[0].tick}..{reports[-1].tick})"
        )

    if policy:
        from dataclasses import replace as replace_record

        from repro.federation import Principal, PolicyViolationError, verify_chain

        researcher = Principal(
            "lab-ext-7", "researcher", "cloud-b", purpose="research"
        )
        hot = "medical-severe-cases"  # spans patient@cloud-a + labresult@cloud-b
        print()
        print("Governance plane (site-level policies, enforced in enumeration):")
        for rule in config.governance.policies:
            print(f"  rule {rule.rule_id!r}: {rule.describe()}")
        print(f"  require_identity={config.governance.require_identity}")

        from repro.common.rng import RngStream
        from repro.midas import MEDICAL_QUERIES

        hot_params = MEDICAL_QUERIES[hot].sample_params(
            RngStream(13, "demo-policy")
        )
        midas.warm_up(hot, runs=max(8, runs // 2), principal=clinician)
        allowed = gateway.submit(
            SubmitRequest(hot, hot_params, principal=clinician)
        )
        sites = sorted(
            {c.payload.execution.site for c in allowed.pareto_set}
        )
        print(
            f"  {clinician.describe()}\n"
            f"    -> {allowed.candidate_count} admissible plans, Pareto "
            f"execution sites: {', '.join(sites)} "
            "(raw Patient rows never leave cloud-a)"
        )
        for denied_principal in (researcher, None):
            who = "anonymous request" if denied_principal is None else denied_principal.describe()
            try:
                gateway.submit(
                    SubmitRequest(hot, hot_params, principal=denied_principal)
                )
            except PolicyViolationError as error:
                print(f"  {who}")
                print(
                    f"    -> DENIED [phase={error.phase}] "
                    f"rules: {', '.join(error.rule_ids)}"
                )

        audit = gateway.audit_report()
        print()
        print(f"Audit log      : {audit.describe()}")
        records = gateway.audit_log.records()
        tampered = list(records)
        tampered[len(records) // 2] = replace_record(
            tampered[len(records) // 2], detail="(falsified after the fact)"
        )
        print(
            "Tamper check   : verify_chain(records)="
            f"{verify_chain(records)}, "
            f"verify_chain(tampered)={verify_chain(tampered)}"
        )

        # Same demo against stable storage: export the chain to a JSON
        # lines file, verify it offline, then flip one byte and watch
        # the verification fail — the audit trail survives the process.
        import tempfile
        from pathlib import Path

        from repro.governance import verify_chain_file

        with tempfile.TemporaryDirectory() as tmp:
            chain_path = Path(tmp) / "audit-chain.jsonl"
            exported = gateway.audit_log.export(chain_path)
            intact = verify_chain_file(chain_path)
            raw = bytearray(chain_path.read_bytes())
            raw[len(raw) // 2] ^= 0x01
            chain_path.write_bytes(bytes(raw))
            print(
                f"On-disk chain  : exported {exported} records, "
                f"verify_chain_file(intact)={intact}, "
                f"verify_chain_file(bit-flipped)={verify_chain_file(chain_path)}"
            )

    if rebalance:
        hot = "medical-severe-cases"
        print()
        print(
            f"Elastic topology: skewing load onto {hot!r} "
            "and running one rebalance cycle..."
        )
        midas.warm_up(hot, runs=2 * runs, principal=clinician)
        gateway.model(hot)
        report = gateway.rebalance()
        print(report.describe())

    serving = gateway.serving_report()
    stats = serving.stats
    print()
    print(f"Serving report : {serving.describe()}")
    if serving.ingest is not None:
        print(f"Ingest counters: {serving.ingest.describe()}")
    if stats.engine_cache is not None:
        print(
            f"Engine cache   : hits={stats.engine_cache.hits}, "
            f"misses={stats.engine_cache.misses}, size={stats.engine_cache.size}"
        )
    gateway.close()
    return 0


def _mre_config(scale_mib: float, quick: bool) -> MreExperimentConfig:
    if quick:
        return MreExperimentConfig(
            scale_mib=scale_mib,
            train_runs=70,
            test_runs=12,
            seeds=(7,),
            queries=("q12", "q17"),
        )
    return MreExperimentConfig(scale_mib=scale_mib)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("artifact", choices=("list", "demo", *ARTIFACTS))
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller configuration for demo/table3/table4 (~15 s)",
    )
    parser.add_argument(
        "--serving-backend",
        choices=("threaded", "sharded"),
        default="threaded",
        help="demo only: serving layer (sharded = cross-process worker pool)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="demo only: shard worker processes for --serving-backend sharded",
    )
    parser.add_argument(
        "--ingest-batch",
        type=int,
        default=None,
        metavar="N",
        help="demo only: run a batched front-door burst with the size "
        "watermark at N items and print the ingest counters",
    )
    parser.add_argument(
        "--ingest-flush-ms",
        type=float,
        default=None,
        metavar="MS",
        help="demo only: staleness watermark for the front-door burst "
        "(milliseconds; requires --ingest-batch)",
    )
    parser.add_argument(
        "--rebalance",
        action="store_true",
        help="demo only: run an elastic shard-topology control cycle and "
        "print the TopologyReport (implies --serving-backend sharded)",
    )
    parser.add_argument(
        "--policy",
        action="store_true",
        help="demo only: enable the governance plane (site-level "
        "DataPolicy rules, identity-scoped denials, hash-chained audit "
        "log with a tamper-detection check)",
    )
    arguments = parser.parse_args(argv)

    if arguments.artifact == "list":
        print("Reproducible artifacts:", ", ".join(ARTIFACTS))
        print("Gateway walkthrough: repro demo [--quick]")
        return 0
    if arguments.artifact == "demo":
        return run_demo(
            arguments.quick,
            arguments.serving_backend,
            arguments.shard_workers,
            arguments.ingest_batch,
            arguments.ingest_flush_ms,
            arguments.rebalance,
            arguments.policy,
        )
    if arguments.artifact == "table1":
        print(format_table1(run_table1()))
        return 0
    if arguments.artifact == "table2":
        print(format_table2(run_table2()))
        return 0
    if arguments.artifact == "table3":
        result = run_mre_experiment(_mre_config(100.0, arguments.quick))
        print(format_mre_table(result, PAPER_TABLE3, "Table 3: MRE, TPC-H 100 MiB"))
        return 0
    if arguments.artifact == "table4":
        result = run_mre_experiment(_mre_config(1024.0, arguments.quick))
        print(format_mre_table(result, PAPER_TABLE4, "Table 4: MRE, TPC-H 1 GiB"))
        return 0
    if arguments.artifact == "figure3":
        print(format_figure3(run_figure3()))
        return 0
    print(format_example31(run_example31()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
