"""Command-line entry point: regenerate paper artifacts.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro table1               # instance pricing (verbatim)
    python -m repro table2               # MLR R^2 vs window size
    python -m repro table3 [--quick]     # MRE, TPC-H 100 MiB
    python -m repro table4 [--quick]     # MRE, TPC-H 1 GiB
    python -m repro figure3              # GA+Pareto vs WSM pipelines
    python -m repro example31            # 18,200-configuration space

``--quick`` shrinks the MRE experiments (1 seed, 2 queries) to ~15 s.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_example31,
    format_figure3,
    format_mre_table,
    format_table1,
    format_table2,
    run_example31,
    run_figure3,
    run_mre_experiment,
    run_table1,
    run_table2,
)
from repro.experiments.mre import MreExperimentConfig

ARTIFACTS = ("table1", "table2", "table3", "table4", "figure3", "example31")


def _mre_config(scale_mib: float, quick: bool) -> MreExperimentConfig:
    if quick:
        return MreExperimentConfig(
            scale_mib=scale_mib,
            train_runs=70,
            test_runs=12,
            seeds=(7,),
            queries=("q12", "q17"),
        )
    return MreExperimentConfig(scale_mib=scale_mib)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("artifact", choices=("list", *ARTIFACTS))
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller configuration for table3/table4 (~15 s)",
    )
    arguments = parser.parse_args(argv)

    if arguments.artifact == "list":
        print("Reproducible artifacts:", ", ".join(ARTIFACTS))
        print("See EXPERIMENTS.md for paper-vs-measured discussion.")
        return 0
    if arguments.artifact == "table1":
        print(format_table1(run_table1()))
        return 0
    if arguments.artifact == "table2":
        print(format_table2(run_table2()))
        return 0
    if arguments.artifact == "table3":
        result = run_mre_experiment(_mre_config(100.0, arguments.quick))
        print(format_mre_table(result, PAPER_TABLE3, "Table 3: MRE, TPC-H 100 MiB"))
        return 0
    if arguments.artifact == "table4":
        result = run_mre_experiment(_mre_config(1024.0, arguments.quick))
        print(format_mre_table(result, PAPER_TABLE4, "Table 4: MRE, TPC-H 1 GiB"))
        return 0
    if arguments.artifact == "figure3":
        print(format_figure3(run_figure3()))
        return 0
    print(format_example31(run_example31()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
