"""Query plans: logical operators, binder, optimizer and local executor.

The *logical* plan is the semantic representation produced from SQL by
:func:`repro.plans.binder.plan_select`.  The *local executor*
(:mod:`repro.plans.execution`) runs logical plans over in-memory tables and
is the ground truth for query results.  The *physical* plan
(:mod:`repro.plans.physical`) annotates operators with engine placement and
size estimates and is what the engine simulators cost.
"""

from repro.plans.catalog import Catalog
from repro.plans.logical import (
    LogicalPlan,
    Scan,
    Filter,
    Project,
    Join,
    Aggregate,
    Sort,
    Limit,
    Distinct,
)
from repro.plans.binder import plan_select, plan_sql
from repro.plans.execution import execute_plan, execute_sql
from repro.plans.statistics import TableStats, ColumnStats, compute_table_stats

__all__ = [
    "Catalog",
    "LogicalPlan",
    "Scan",
    "Filter",
    "Project",
    "Join",
    "Aggregate",
    "Sort",
    "Limit",
    "Distinct",
    "plan_select",
    "plan_sql",
    "execute_plan",
    "execute_sql",
    "TableStats",
    "ColumnStats",
    "compute_table_stats",
]
