"""Binder: SQL AST -> bound logical plan.

Resolution rules follow standard SQL:

* Column references resolve against the innermost scope first; a reference
  that only resolves in the enclosing query becomes a correlated
  :class:`~repro.relational.expressions.OuterColumn` (one level of
  correlation is supported — enough for TPC-H Q17-style subqueries).
* With ``GROUP BY`` (or any aggregate present), SELECT/HAVING expressions
  may reference group expressions (matched structurally on the *unbound*
  AST) and aggregate calls; any other column reference is an error.
* ``ORDER BY`` binds against the projection output: by alias/output name,
  by 1-based position, or by structural match with a select item.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanError, SchemaError, SqlError
from repro.plans.catalog import Catalog
from repro.plans.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SortKey,
    SubqueryAlias,
)
from repro.relational.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    BoundColumn,
    CaseWhen,
    ColumnRef,
    Exists,
    Expr,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    OuterColumn,
    ScalarSubquery,
    UnaryOp,
    collect_aggregates,
    contains_aggregate,
    infer_dtype,
    walk,
)
from repro.relational.schema import Field
from repro.sql.ast import (
    DerivedTable,
    JoinClause,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.parser import parse_select


class Scope:
    """A binder scope: the visible fields, chained to an optional outer scope."""

    def __init__(self, fields: list[Field], outer: "Scope | None" = None):
        self.fields = fields
        self.outer = outer

    def resolve(self, qualifier: str | None, name: str) -> tuple[int, int, Field]:
        """Resolve a reference; returns (level, index, field).

        ``level`` 0 means this scope, 1 the outer scope.  Raises
        :class:`SchemaError` when the name is missing or ambiguous.
        """
        matches = [
            (i, f) for i, f in enumerate(self.fields) if f.matches(qualifier, name)
        ]
        if len(matches) == 1:
            index, matched = matches[0]
            return 0, index, matched
        if len(matches) > 1:
            display = f"{qualifier}.{name}" if qualifier else name
            raise SchemaError(f"ambiguous column reference {display!r}")
        if self.outer is not None:
            level, index, matched = self.outer.resolve(qualifier, name)
            if level > 0:
                raise SchemaError(
                    f"column {name!r} requires more than one level of correlation"
                )
            return 1, index, matched
        display = f"{qualifier}.{name}" if qualifier else name
        available = ", ".join(
            (f"{f.qualifier}.{f.name}" if f.qualifier else f.name) for f in self.fields
        )
        raise SchemaError(f"unknown column {display!r}; in scope: {available}")


def plan_sql(sql_text: str, catalog: Catalog) -> LogicalPlan:
    """Parse ``sql_text`` and bind it against ``catalog``."""
    return plan_select(parse_select(sql_text), catalog)


def plan_select(
    statement: SelectStatement,
    catalog: Catalog,
    outer_scope: Scope | None = None,
) -> LogicalPlan:
    """Bind one SELECT statement into a logical plan."""
    if statement.from_clause is None:
        raise PlanError("SELECT without FROM is not supported")
    plan = _plan_table_ref(statement.from_clause, catalog)
    scope = Scope(plan.output_fields(), outer_scope)

    if statement.where is not None:
        predicate = _bind(statement.where, scope, catalog)
        if contains_aggregate(predicate):
            raise PlanError("aggregates are not allowed in WHERE")
        plan = Filter(plan, predicate)

    has_aggregates = bool(statement.group_by) or any(
        isinstance(item, SelectItem) and contains_aggregate(item.expr)
        for item in statement.items
    )
    if statement.having is not None and not has_aggregates:
        raise PlanError("HAVING requires GROUP BY or aggregates")

    if has_aggregates:
        plan, item_exprs, item_names = _plan_aggregate(statement, plan, scope, catalog)
    else:
        item_exprs, item_names = _bind_select_items(statement, scope, catalog)

    plan = Project(plan, tuple(item_exprs), tuple(item_names))

    if statement.distinct:
        plan = Distinct(plan)

    if statement.order_by:
        keys = _bind_order_by(statement, item_names)
        plan = Sort(plan, tuple(keys))

    if statement.limit is not None:
        plan = Limit(plan, statement.limit)
    return plan


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------


def _plan_table_ref(ref: TableRef, catalog: Catalog) -> LogicalPlan:
    if isinstance(ref, NamedTable):
        schema = catalog.schema(ref.name)
        fields = tuple(schema.fields(ref.binding_name))
        return Scan(ref.name, ref.binding_name, fields)
    if isinstance(ref, DerivedTable):
        child = plan_select(ref.query, catalog)
        child_fields = child.output_fields()
        if ref.column_aliases:
            if len(ref.column_aliases) != len(child_fields):
                raise PlanError(
                    f"derived table {ref.alias!r}: {len(ref.column_aliases)} column "
                    f"aliases for {len(child_fields)} columns"
                )
            names = ref.column_aliases
        else:
            names = tuple(f.name for f in child_fields)
        fields = tuple(
            Field(name, f.dtype, ref.alias, f.nullable)
            for name, f in zip(names, child_fields)
        )
        return SubqueryAlias(child, ref.alias, fields)
    if isinstance(ref, JoinClause):
        if ref.kind == "right":
            # Rewrite RIGHT JOIN as LEFT JOIN with swapped inputs, then
            # re-project columns back into the original order.
            swapped = JoinClause(ref.right, ref.left, "left", ref.condition)
            plan = _plan_table_ref(swapped, catalog)
            fields = plan.output_fields()
            right_width = len(_plan_table_ref(ref.right, catalog).output_fields())
            order = list(range(right_width, len(fields))) + list(range(right_width))
            exprs = tuple(
                BoundColumn(i, fields[i].dtype, fields[i].name) for i in order
            )
            names = tuple(fields[i].name for i in order)
            # SubqueryAlias-free reorder: keep original qualifiers via fields.
            reordered = Project(plan, exprs, names)
            qualified = tuple(
                Field(fields[i].name, fields[i].dtype, fields[i].qualifier, True)
                for i in order
            )
            return SubqueryAlias(reordered, alias="", fields=qualified)
        left = _plan_table_ref(ref.left, catalog)
        right = _plan_table_ref(ref.right, catalog)
        combined = Scope(left.output_fields() + right.output_fields())
        condition = None
        if ref.condition is not None:
            condition = _bind(ref.condition, combined, catalog)
        return Join(left, right, ref.kind, condition)
    raise PlanError(f"unknown table reference {ref!r}")


# ---------------------------------------------------------------------------
# Expression binding
# ---------------------------------------------------------------------------


def _bind(expr: Expr, scope: Scope, catalog: Catalog) -> Expr:
    """Bind ``expr`` against ``scope``, planning any nested subqueries."""
    if isinstance(expr, ColumnRef):
        level, index, field = scope.resolve(expr.qualifier, expr.name)
        if level == 0:
            return BoundColumn(index, field.dtype, field.name)
        return OuterColumn(index, field.dtype, field.name)
    if isinstance(expr, (BoundColumn, OuterColumn, Literal)):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _bind(expr.left, scope, catalog), _bind(expr.right, scope, catalog))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _bind(expr.operand, scope, catalog))
    if isinstance(expr, CaseWhen):
        whens = tuple(
            (_bind(cond, scope, catalog), _bind(value, scope, catalog))
            for cond, value in expr.whens
        )
        else_ = _bind(expr.else_, scope, catalog) if expr.else_ is not None else None
        return CaseWhen(whens, else_)
    if isinstance(expr, Like):
        return Like(_bind(expr.operand, scope, catalog), expr.pattern, expr.negated)
    if isinstance(expr, InList):
        return InList(
            _bind(expr.operand, scope, catalog),
            tuple(_bind(v, scope, catalog) for v in expr.values),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            _bind(expr.operand, scope, catalog),
            _bind(expr.low, scope, catalog),
            _bind(expr.high, scope, catalog),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(_bind(expr.operand, scope, catalog), expr.negated)
    if isinstance(expr, AggregateCall):
        arg = _bind(expr.arg, scope, catalog) if expr.arg is not None else None
        return AggregateCall(expr.func, arg, expr.distinct)
    if isinstance(expr, ScalarSubquery):
        subplan = _bind_subquery(expr.plan, scope, catalog)
        if len(subplan.output_fields()) != 1:
            raise PlanError("scalar subquery must produce exactly one column")
        return ScalarSubquery(subplan, _correlations(subplan))
    if isinstance(expr, InSubquery):
        subplan = _bind_subquery(expr.plan, scope, catalog)
        if len(subplan.output_fields()) != 1:
            raise PlanError("IN subquery must produce exactly one column")
        return InSubquery(_bind(expr.operand, scope, catalog), subplan, expr.negated)
    if isinstance(expr, Exists):
        subplan = _bind_subquery(expr.plan, scope, catalog)
        return Exists(subplan, expr.negated)
    raise PlanError(f"cannot bind expression {expr!r}")


def _bind_subquery(ast_or_plan, scope: Scope, catalog: Catalog) -> LogicalPlan:
    if isinstance(ast_or_plan, LogicalPlan):
        return ast_or_plan  # already bound (idempotent re-binding)
    if isinstance(ast_or_plan, SelectStatement):
        return plan_select(ast_or_plan, catalog, outer_scope=scope)
    raise PlanError(f"subquery slot holds {type(ast_or_plan).__name__}, expected AST")


def _correlations(plan: LogicalPlan) -> tuple[tuple[int, str], ...]:
    """Collect (outer index, name) pairs referenced by a subquery plan."""
    seen: dict[int, str] = {}
    for node in plan.walk():
        for expr in _node_expressions(node):
            for part in walk(expr):
                if isinstance(part, OuterColumn):
                    seen[part.index] = part.name
    return tuple(sorted(seen.items()))


def _node_expressions(node: LogicalPlan) -> list[Expr]:
    collected: list[Expr] = []
    node.map_expressions(lambda e: collected.append(e) or e)
    return collected


# ---------------------------------------------------------------------------
# SELECT items (non-aggregate path)
# ---------------------------------------------------------------------------


def _item_name(item: SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ColumnRef):
        return item.expr.name
    return f"col{position + 1}"


def _bind_select_items(
    statement: SelectStatement, scope: Scope, catalog: Catalog
) -> tuple[list[Expr], list[str]]:
    exprs: list[Expr] = []
    names: list[str] = []
    for position, item in enumerate(statement.items):
        if isinstance(item, Star):
            for index, field in enumerate(scope.fields):
                if item.qualifier is None or (
                    field.qualifier is not None
                    and field.qualifier.lower() == item.qualifier.lower()
                ):
                    exprs.append(BoundColumn(index, field.dtype, field.name))
                    names.append(field.name)
            continue
        exprs.append(_bind(item.expr, scope, catalog))
        names.append(_item_name(item, position))
    if not exprs:
        raise PlanError("SELECT list is empty after star expansion")
    return exprs, names


# ---------------------------------------------------------------------------
# Aggregation path
# ---------------------------------------------------------------------------


def _plan_aggregate(
    statement: SelectStatement,
    child: LogicalPlan,
    scope: Scope,
    catalog: Catalog,
) -> tuple[LogicalPlan, list[Expr], list[str]]:
    """Build the Aggregate node and rewritten SELECT/HAVING expressions."""
    group_unbound = list(statement.group_by)
    bound_groups = [_bind(g, scope, catalog) for g in group_unbound]
    group_names = [
        g.name if isinstance(g, ColumnRef) else f"group{i + 1}"
        for i, g in enumerate(group_unbound)
    ]

    # Deduplicate aggregate calls across SELECT and HAVING, by unbound shape.
    agg_unbound: list[AggregateCall] = []
    for item in statement.items:
        if isinstance(item, Star):
            raise PlanError("SELECT * cannot be combined with GROUP BY/aggregates")
        for agg in collect_aggregates(item.expr):
            if agg not in agg_unbound:
                agg_unbound.append(agg)
    if statement.having is not None:
        for agg in collect_aggregates(statement.having):
            if agg not in agg_unbound:
                agg_unbound.append(agg)

    bound_aggs = [_bind(a, scope, catalog) for a in agg_unbound]
    agg_names = [f"agg{i + 1}" for i in range(len(bound_aggs))]

    aggregate = Aggregate(
        child,
        tuple(bound_groups),
        tuple(group_names),
        tuple(bound_aggs),
        tuple(agg_names),
    )
    output_fields = aggregate.output_fields()

    def rewrite(expr: Expr) -> Expr:
        """Rewrite a SELECT/HAVING expression over the aggregate's output."""
        for i, group in enumerate(group_unbound):
            if expr == group:
                return BoundColumn(i, output_fields[i].dtype, output_fields[i].name)
        if isinstance(expr, AggregateCall):
            index = agg_unbound.index(expr)
            slot = len(group_unbound) + index
            return BoundColumn(slot, output_fields[slot].dtype, output_fields[slot].name)
        if isinstance(expr, ColumnRef):
            raise PlanError(
                f"column {expr.sql()} must appear in GROUP BY or inside an aggregate"
            )
        return _rebuild_with(expr, rewrite)

    item_exprs: list[Expr] = []
    item_names: list[str] = []
    for position, item in enumerate(statement.items):
        assert isinstance(item, SelectItem)
        item_exprs.append(rewrite(item.expr))
        item_names.append(_item_name(item, position))

    plan: LogicalPlan = aggregate
    if statement.having is not None:
        plan = Filter(plan, rewrite(statement.having))
    return plan, item_exprs, item_names


def _rebuild_with(expr: Expr, fn) -> Expr:
    """Rebuild one level of ``expr``, applying ``fn`` to sub-expressions."""
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, fn(expr.operand))
    if isinstance(expr, CaseWhen):
        whens = tuple((fn(cond), fn(value)) for cond, value in expr.whens)
        else_ = fn(expr.else_) if expr.else_ is not None else None
        return CaseWhen(whens, else_)
    if isinstance(expr, Like):
        return Like(fn(expr.operand), expr.pattern, expr.negated)
    if isinstance(expr, InList):
        return InList(fn(expr.operand), tuple(fn(v) for v in expr.values), expr.negated)
    if isinstance(expr, Between):
        return Between(fn(expr.operand), fn(expr.low), fn(expr.high), expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(fn(expr.operand), expr.negated)
    return expr


# ---------------------------------------------------------------------------
# ORDER BY
# ---------------------------------------------------------------------------


def _bind_order_by(statement: SelectStatement, item_names: list[str]) -> list[SortKey]:
    keys: list[SortKey] = []
    lowered_names = [n.lower() for n in item_names]
    for order_item in statement.order_by:
        expr = order_item.expr
        index: int | None = None
        if isinstance(expr, ColumnRef) and expr.qualifier is None:
            try:
                index = lowered_names.index(expr.name.lower())
            except ValueError:
                index = None
        if index is None and isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(item_names):
                raise PlanError(f"ORDER BY position {position} out of range")
            index = position - 1
        if index is None:
            for i, item in enumerate(statement.items):
                if isinstance(item, SelectItem) and item.expr == expr:
                    index = i
                    break
        if index is None:
            raise PlanError(
                f"cannot bind ORDER BY {expr.sql()}: not an output column, "
                "position, or select-item expression"
            )
        keys.append(SortKey(index, order_item.descending))
    return keys
