"""Table statistics and cardinality estimation.

Statistics drive two consumers:

* the **physical plan builder**, which annotates operators with estimated
  row counts and byte sizes, and
* the **engine simulators**, whose analytic cost terms consume those sizes.

Stats can be computed exactly from a physical table or synthesised from a
logical scale factor (the TPC-H dataset does the latter so a "1 GiB"
experiment does not require generating a gibibyte of rows).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import PlanError
from repro.relational.expressions import (
    Between,
    BinaryOp,
    BoundColumn,
    Exists,
    Expr,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    ScalarSubquery,
    UnaryOp,
    COMPARISON_OPS,
)
from repro.relational.table import Table

DEFAULT_COMPARISON_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_SUBQUERY_SELECTIVITY = 0.5


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column."""

    distinct_count: int
    null_fraction: float = 0.0
    min_value: Any = None
    max_value: Any = None

    def scaled(self, factor: float) -> "ColumnStats":
        """Scale the distinct count for a larger/smaller logical table."""
        return replace(self, distinct_count=max(1, int(self.distinct_count * factor)))


@dataclass(frozen=True)
class TableStats:
    """Summary statistics for one table."""

    row_count: int
    size_bytes: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def row_width(self) -> float:
        return self.size_bytes / self.row_count if self.row_count else 0.0

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())

    def sampled(self, fraction: float) -> "TableStats":
        """Statistics of a row sample of this table.

        Used by IReS-style profiling runs that execute queries over varied
        input sizes to learn size -> cost relationships.  Key-like columns
        (distinct ~ rows) shrink their distinct counts with the sample;
        categorical columns keep theirs.
        """
        if not 0.0 < fraction <= 1.0:
            raise PlanError(f"sample fraction must be in (0, 1], got {fraction}")
        rows = max(1, int(round(self.row_count * fraction)))
        columns = {}
        for name, stats in self.columns.items():
            if stats.distinct_count >= 0.5 * self.row_count:
                columns[name] = replace(
                    stats,
                    distinct_count=max(1, min(rows, int(stats.distinct_count * fraction))),
                )
            else:
                columns[name] = replace(
                    stats, distinct_count=min(stats.distinct_count, rows)
                )
        return TableStats(rows, max(1, int(round(self.size_bytes * fraction))), columns)


def compute_table_stats(table: Table) -> TableStats:
    """Exact statistics from a physical table."""
    columns: dict[str, ColumnStats] = {}
    rows = table.num_rows
    for column in table.schema:
        values = table.column(column.name)
        non_null = [v for v in values if v is not None]
        distinct = len(set(non_null))
        null_fraction = 1.0 - (len(non_null) / rows) if rows else 0.0
        min_value = min(non_null) if non_null else None
        max_value = max(non_null) if non_null else None
        columns[column.name.lower()] = ColumnStats(
            distinct_count=max(distinct, 1),
            null_fraction=null_fraction,
            min_value=min_value,
            max_value=max_value,
        )
    return TableStats(rows, table.size_bytes(), columns)


# ---------------------------------------------------------------------------
# Selectivity estimation
# ---------------------------------------------------------------------------


class StatsContext:
    """Maps bound row positions to column statistics.

    Built by the physical planner: one :class:`ColumnStats` (or ``None``)
    per output field of the operator the predicate sits on.
    """

    def __init__(self, column_stats: list[ColumnStats | None]):
        self._stats = column_stats

    def for_index(self, index: int) -> ColumnStats | None:
        if 0 <= index < len(self._stats):
            return self._stats[index]
        return None

    @property
    def width(self) -> int:
        return len(self._stats)


def estimate_selectivity(expr: Expr, context: StatsContext) -> float:
    """Estimated fraction of rows satisfying boolean ``expr`` (in [0, 1])."""
    result = _selectivity(expr, context)
    return min(1.0, max(0.0, result))


def _selectivity(expr: Expr, ctx: StatsContext) -> float:
    if isinstance(expr, BinaryOp):
        if expr.op == "AND":
            return _selectivity(expr.left, ctx) * _selectivity(expr.right, ctx)
        if expr.op == "OR":
            a = _selectivity(expr.left, ctx)
            b = _selectivity(expr.right, ctx)
            return a + b - a * b
        if expr.op in COMPARISON_OPS:
            return _comparison_selectivity(expr, ctx)
        return DEFAULT_COMPARISON_SELECTIVITY
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return 1.0 - _selectivity(expr.operand, ctx)
    if isinstance(expr, Like):
        base = DEFAULT_LIKE_SELECTIVITY
        if expr.pattern and not expr.pattern.startswith(("%", "_")):
            base = base / 2
        return 1.0 - base if expr.negated else base
    if isinstance(expr, InList):
        stats = _column_stats_of(expr.operand, ctx)
        if stats is not None:
            base = min(1.0, len(expr.values) / stats.distinct_count)
        else:
            base = min(1.0, 0.05 * len(expr.values))
        return 1.0 - base if expr.negated else base
    if isinstance(expr, Between):
        base = _range_fraction(expr, ctx)
        return 1.0 - base if expr.negated else base
    if isinstance(expr, IsNull):
        stats = _column_stats_of(expr.operand, ctx)
        base = stats.null_fraction if stats is not None else 0.01
        return 1.0 - base if expr.negated else base
    if isinstance(expr, (InSubquery, Exists, ScalarSubquery)):
        return DEFAULT_SUBQUERY_SELECTIVITY
    if isinstance(expr, Literal):
        if expr.value is True:
            return 1.0
        if expr.value in (False, None):
            return 0.0
    return DEFAULT_COMPARISON_SELECTIVITY


def _column_stats_of(expr: Expr, ctx: StatsContext) -> ColumnStats | None:
    if isinstance(expr, BoundColumn):
        return ctx.for_index(expr.index)
    return None


def _literal_value(expr: Expr) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    # Constant arithmetic (e.g. DATE '1994-01-01' + INTERVAL '1' YEAR)
    # folds at estimation time when no columns are involved.
    from repro.relational.expressions import evaluate, walk as walk_expr

    if all(not isinstance(n, BoundColumn) for n in walk_expr(expr)):
        try:
            return evaluate(expr, ())
        except Exception:
            return None
    return None


def _comparison_selectivity(expr: BinaryOp, ctx: StatsContext) -> float:
    column, literal = expr.left, expr.right
    op = expr.op
    if not isinstance(column, BoundColumn):
        column, literal = expr.right, expr.left
        op = _flip(op)
    if not isinstance(column, BoundColumn):
        return DEFAULT_COMPARISON_SELECTIVITY
    stats = ctx.for_index(column.index)
    value = _literal_value(literal)
    if stats is None:
        return DEFAULT_COMPARISON_SELECTIVITY
    if op == "=":
        return 1.0 / stats.distinct_count
    if op == "<>":
        return 1.0 - 1.0 / stats.distinct_count
    if value is None or stats.min_value is None or stats.max_value is None:
        return DEFAULT_COMPARISON_SELECTIVITY
    fraction = _position_fraction(value, stats.min_value, stats.max_value)
    if fraction is None:
        return DEFAULT_COMPARISON_SELECTIVITY
    if op in ("<", "<="):
        return fraction
    return 1.0 - fraction


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def _position_fraction(value: Any, low: Any, high: Any) -> float | None:
    """Where ``value`` sits in [low, high], linearly interpolated."""
    converted = _to_number(value)
    low_n = _to_number(low)
    high_n = _to_number(high)
    if converted is None or low_n is None or high_n is None:
        return None
    if high_n <= low_n:
        return 0.5
    return min(1.0, max(0.0, (converted - low_n) / (high_n - low_n)))


def _to_number(value: Any) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


def _range_fraction(expr: Between, ctx: StatsContext) -> float:
    stats = _column_stats_of(expr.operand, ctx)
    if stats is None or stats.min_value is None or stats.max_value is None:
        return DEFAULT_COMPARISON_SELECTIVITY
    low = _literal_value(expr.low)
    high = _literal_value(expr.high)
    if low is None or high is None:
        return DEFAULT_COMPARISON_SELECTIVITY
    low_frac = _position_fraction(low, stats.min_value, stats.max_value)
    high_frac = _position_fraction(high, stats.min_value, stats.max_value)
    if low_frac is None or high_frac is None:
        return DEFAULT_COMPARISON_SELECTIVITY
    return max(0.0, high_frac - low_frac)


def estimate_equi_join_rows(
    left_rows: float,
    right_rows: float,
    left_distinct: float,
    right_distinct: float,
) -> float:
    """Classic equi-join cardinality: |L||R| / max(V(L,k), V(R,k))."""
    denominator = max(left_distinct, right_distinct, 1.0)
    return left_rows * right_rows / denominator
