"""Rule-based logical optimizer.

Three rewrites, applied bottom-up to a fixpoint:

1. **Merge filters** — ``Filter(Filter(x, a), b)`` becomes
   ``Filter(x, a AND b)``.
2. **Push filters into joins** — conjuncts of a filter above an
   inner/cross join move to the side they reference (indices are remapped
   when crossing to the right input); cross-side conjuncts join the ON
   condition.  Above a *left* join only left-side conjuncts move (pushing
   right-side or cross-side predicates would change NULL-extension
   semantics).  Conjuncts containing subqueries never move — their
   correlated references are positional in the pre-push row layout.
3. **Cross-to-inner** — a cross join that received an equality conjunct
   becomes an inner join, unlocking hash-join execution.

The rewrites preserve results exactly; tests compare optimised vs
unoptimised executions on randomised inputs.
"""

from __future__ import annotations

from repro.plans.logical import (
    Filter,
    Join,
    LogicalPlan,
    with_children,
)
from repro.relational.expressions import (
    BinaryOp,
    BoundColumn,
    Exists,
    Expr,
    InSubquery,
    OuterColumn,
    ScalarSubquery,
    transform,
    walk,
)


def optimize(plan: LogicalPlan) -> LogicalPlan:
    """Apply all rewrite rules bottom-up until nothing changes.

    After a node rewrite the whole subtree is re-optimized: a pushdown
    can create a new Filter above an already-visited join (e.g. pushing
    the WHERE of a three-way comma join into its nested cross join),
    which must itself be pushed further down.
    """
    children = [optimize(child) for child in plan.children()]
    plan = with_children(plan, children)
    rewritten = _rewrite_once(plan)
    if rewritten is not plan:
        return optimize(rewritten)
    return plan


def _rewrite_once(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, Filter):
        child = plan.child
        if isinstance(child, Filter):
            merged = BinaryOp("AND", child.predicate, plan.predicate)
            return Filter(child.child, merged)
        if isinstance(child, Join) and child.kind in ("inner", "cross", "left"):
            pushed = _push_filter(plan.predicate, child)
            if pushed is not None:
                return pushed
    return plan


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten nested ANDs into a conjunct list."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(parts: list[Expr]) -> Expr | None:
    """Rebuild an AND tree from conjuncts (None when empty)."""
    result: Expr | None = None
    for part in parts:
        result = part if result is None else BinaryOp("AND", result, part)
    return result


def referenced_indices(expr: Expr) -> set[int]:
    """Row positions referenced by ``expr`` (not descending into subqueries)."""
    return {node.index for node in walk(expr) if isinstance(node, BoundColumn)}


def contains_subquery(expr: Expr) -> bool:
    return any(
        isinstance(node, (ScalarSubquery, InSubquery, Exists, OuterColumn))
        for node in walk(expr)
    )


def _shift_columns(expr: Expr, offset: int) -> Expr:
    """Remap BoundColumn indices by ``offset`` (for pushing to the right input)."""
    return transform(
        expr,
        lambda node: BoundColumn(node.index + offset, node.dtype, node.name)
        if isinstance(node, BoundColumn)
        else None,
    )


def _push_filter(predicate: Expr, join: Join) -> LogicalPlan | None:
    left_width = len(join.left.output_fields())
    total_width = left_width + len(join.right.output_fields())

    to_left: list[Expr] = []
    to_right: list[Expr] = []
    to_condition: list[Expr] = []
    keep: list[Expr] = []

    for part in conjuncts(predicate):
        if contains_subquery(part):
            keep.append(part)
            continue
        indices = referenced_indices(part)
        if indices and max(indices) >= total_width:
            keep.append(part)  # defensive: malformed reference, do not touch
            continue
        left_only = all(i < left_width for i in indices)
        right_only = all(i >= left_width for i in indices) and indices
        if left_only:
            to_left.append(part)
        elif right_only and join.kind != "left":
            to_right.append(_shift_columns(part, -left_width))
        elif join.kind != "left":
            to_condition.append(part)
        else:
            keep.append(part)

    if not (to_left or to_right or to_condition):
        return None

    left = join.left
    right = join.right
    if to_left:
        left = Filter(left, conjoin(to_left))
    if to_right:
        right = Filter(right, conjoin(to_right))

    kind = join.kind
    condition = join.condition
    if to_condition:
        combined = conjuncts(condition) if condition is not None else []
        condition = conjoin(combined + to_condition)
        if kind == "cross":
            kind = "inner"

    new_join = Join(left, right, kind, condition)
    remaining = conjoin(keep)
    if remaining is not None:
        return Filter(new_join, remaining)
    return new_join
