"""Table catalog: name -> schema (+ optionally data) resolution.

The binder only needs schemas; the local executor also needs the table
data.  A :class:`Catalog` can therefore hold either full
:class:`~repro.relational.table.Table` objects or bare schemas (for
plan-only / simulation use).
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational.table import Table


class Catalog:
    """A case-insensitive mapping of table names to schemas and data."""

    def __init__(self, tables: Iterable[Table] = ()):
        self._schemas: dict[str, Schema] = {}
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        key = table.name.lower()
        if key in self._schemas:
            raise SchemaError(f"table {table.name!r} already registered")
        self._schemas[key] = table.schema
        self._tables[key] = table

    def add_schema(self, name: str, schema: Schema) -> None:
        key = name.lower()
        if key in self._schemas:
            raise SchemaError(f"table {name!r} already registered")
        self._schemas[key] = schema

    def has_table(self, name: str) -> bool:
        return name.lower() in self._schemas

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._schemas)) or "<empty>"
            raise SchemaError(f"unknown table {name!r}; catalog has: {known}") from None

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._schemas:
            raise SchemaError(f"unknown table {name!r}")
        if key not in self._tables:
            raise SchemaError(f"table {name!r} is schema-only (no data registered)")
        return self._tables[key]

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __repr__(self) -> str:
        return f"Catalog({self.table_names()})"
