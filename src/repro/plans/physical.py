"""Physical plan profiles: size/placement-annotated operator lists.

A :class:`PlanProfile` is what engine simulators cost.  It is derived from
a bound, optimized logical plan plus table statistics and a
:class:`Placement` (which engine/site stores each table and where the
upper plan operators execute).  Sizes are estimated with the cardinality
model in :mod:`repro.plans.statistics`.

The profile is deliberately flat — a list of operator records and a list
of inter-site transfers — because engine cost models consume aggregate
quantities (bytes scanned, rows joined, bytes shuffled), not tree shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import PlanError
from repro.plans.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SubqueryAlias,
)
from repro.plans.statistics import (
    ColumnStats,
    StatsContext,
    TableStats,
    estimate_equi_join_rows,
    estimate_selectivity,
)
from repro.relational.expressions import (
    BoundColumn,
    Exists,
    Expr,
    InSubquery,
    ScalarSubquery,
    walk,
)
from repro.relational.types import TYPE_WIDTH_BYTES


@dataclass(frozen=True)
class EnginePlacement:
    """Which engine at which site."""

    engine: str
    site: str


@dataclass(frozen=True)
class Placement:
    """The placement decisions of one QEP.

    ``tables`` maps base-table names to the engine holding them;
    ``execution`` is where joins and everything above them run (one of the
    participating engines, per the IReS multi-engine model).
    """

    tables: dict[str, EnginePlacement]
    execution: EnginePlacement

    def for_table(self, table_name: str) -> EnginePlacement:
        try:
            return self.tables[table_name.lower()]
        except KeyError:
            known = ", ".join(sorted(self.tables))
            raise PlanError(
                f"no placement for table {table_name!r}; have: {known}"
            ) from None


@dataclass(frozen=True)
class OperatorProfile:
    """One costed operator."""

    kind: str
    engine: str
    site: str
    input_rows: float
    input_bytes: float
    output_rows: float
    output_bytes: float
    detail: str = ""


@dataclass(frozen=True)
class TransferProfile:
    """Bytes moved between sites (engine-to-engine hand-off)."""

    from_site: str
    to_site: str
    payload_bytes: float


@dataclass
class PlanProfile:
    """The flat costed form of a QEP."""

    operators: list[OperatorProfile] = field(default_factory=list)
    transfers: list[TransferProfile] = field(default_factory=list)
    output_rows: float = 0.0
    output_bytes: float = 0.0
    #: Per base table: estimated bytes surviving the filters directly
    #: above its scan (the "size of data" feature of the paper's Eq. 5).
    effective_table_bytes: dict[str, float] = field(default_factory=dict)

    def scanned_bytes(self, site: str | None = None) -> float:
        return sum(
            op.input_bytes
            for op in self.operators
            if op.kind == "scan" and (site is None or op.site == site)
        )

    def scanned_bytes_by_table(self) -> dict[str, float]:
        result: dict[str, float] = {}
        for op in self.operators:
            if op.kind == "scan":
                result[op.detail] = result.get(op.detail, 0.0) + op.input_bytes
        return result

    def transferred_bytes(self) -> float:
        return sum(t.payload_bytes for t in self.transfers)

    def intermediate_bytes(self) -> float:
        """Bytes materialised between operators (shuffle + transfer)."""
        joins_and_aggs = sum(
            op.output_bytes
            for op in self.operators
            if op.kind in ("join", "aggregate", "sort", "distinct")
        )
        return joins_and_aggs + self.transferred_bytes()

    def operators_at(self, engine: str, site: str) -> list[OperatorProfile]:
        return [op for op in self.operators if op.engine == engine and op.site == site]

    def participating(self) -> list[EnginePlacement]:
        seen: dict[tuple[str, str], EnginePlacement] = {}
        for op in self.operators:
            seen[(op.engine, op.site)] = EnginePlacement(op.engine, op.site)
        return list(seen.values())


@dataclass
class _Annotated:
    """Recursion state: estimated relation + where it currently lives."""

    rows: float
    bytes: float
    column_stats: list[ColumnStats | None]
    placement: EnginePlacement
    #: Base table this relation is a (filtered) scan of, if any, plus the
    #: contribution it currently has in ``effective_table_bytes``.
    base_table: str | None = None
    base_contribution: float = 0.0


def profile_plan(
    plan: LogicalPlan,
    stats: dict[str, TableStats],
    placement: Placement,
) -> PlanProfile:
    """Estimate sizes for every operator and record cross-site transfers."""
    profile = PlanProfile()
    result = _profile(plan, stats, placement, profile)
    profile.output_rows = result.rows
    profile.output_bytes = result.bytes
    return profile


def _row_width(fields) -> float:
    return float(sum(TYPE_WIDTH_BYTES[f.dtype] for f in fields))


def _profile(
    plan: LogicalPlan,
    stats: dict[str, TableStats],
    placement: Placement,
    profile: PlanProfile,
) -> _Annotated:
    if isinstance(plan, Scan):
        table_stats = stats.get(plan.table_name.lower())
        if table_stats is None:
            raise PlanError(f"no statistics for table {plan.table_name!r}")
        where = placement.for_table(plan.table_name)
        column_stats = [
            table_stats.column(f.name) for f in plan.fields
        ]
        profile.operators.append(
            OperatorProfile(
                "scan",
                where.engine,
                where.site,
                table_stats.row_count,
                table_stats.size_bytes,
                table_stats.row_count,
                table_stats.size_bytes,
                detail=plan.table_name.lower(),
            )
        )
        table_key = plan.table_name.lower()
        profile.effective_table_bytes[table_key] = (
            profile.effective_table_bytes.get(table_key, 0.0)
            + float(table_stats.size_bytes)
        )
        return _Annotated(
            float(table_stats.row_count),
            float(table_stats.size_bytes),
            column_stats,
            where,
            base_table=table_key,
            base_contribution=float(table_stats.size_bytes),
        )

    if isinstance(plan, Filter):
        child = _profile(plan.child, stats, placement, profile)
        selectivity = estimate_selectivity(
            plan.predicate, StatsContext(child.column_stats)
        )
        _profile_subqueries(plan.predicate, stats, placement, profile)
        out_rows = child.rows * selectivity
        out_bytes = child.bytes * selectivity
        profile.operators.append(
            OperatorProfile(
                "filter",
                child.placement.engine,
                child.placement.site,
                child.rows,
                child.bytes,
                out_rows,
                out_bytes,
                detail=f"sel={selectivity:.4f}",
            )
        )
        shrunk = [
            s.scaled(min(1.0, selectivity * 2)) if s is not None else None
            for s in child.column_stats
        ]
        base_table = child.base_table
        contribution = child.base_contribution
        if base_table is not None:
            profile.effective_table_bytes[base_table] -= contribution
            profile.effective_table_bytes[base_table] += out_bytes
            contribution = out_bytes
        return _Annotated(
            out_rows, out_bytes, shrunk, child.placement,
            base_table=base_table, base_contribution=contribution,
        )

    if isinstance(plan, Join):
        return _profile_join(plan, stats, placement, profile)

    if isinstance(plan, Aggregate):
        child = _profile(plan.child, stats, placement, profile)
        group_rows = _estimate_groups(plan, child)
        width = _row_width(plan.output_fields())
        out_bytes = group_rows * width
        profile.operators.append(
            OperatorProfile(
                "aggregate",
                child.placement.engine,
                child.placement.site,
                child.rows,
                child.bytes,
                group_rows,
                out_bytes,
                detail=f"groups={len(plan.group_exprs)}",
            )
        )
        column_stats: list[ColumnStats | None] = []
        for expr in plan.group_exprs:
            if isinstance(expr, BoundColumn):
                column_stats.append(child.column_stats[expr.index])
            else:
                column_stats.append(None)
        column_stats.extend([None] * len(plan.aggregates))
        return _Annotated(group_rows, out_bytes, column_stats, child.placement)

    if isinstance(plan, Project):
        child = _profile(plan.child, stats, placement, profile)
        width = _row_width(plan.output_fields())
        out_bytes = child.rows * width
        column_stats = []
        for expr in plan.exprs:
            if isinstance(expr, BoundColumn):
                column_stats.append(child.column_stats[expr.index])
            else:
                column_stats.append(None)
        # Projection is virtually free; recorded for completeness.
        profile.operators.append(
            OperatorProfile(
                "project",
                child.placement.engine,
                child.placement.site,
                child.rows,
                child.bytes,
                child.rows,
                out_bytes,
            )
        )
        return _Annotated(child.rows, out_bytes, column_stats, child.placement)

    if isinstance(plan, Sort):
        child = _profile(plan.child, stats, placement, profile)
        profile.operators.append(
            OperatorProfile(
                "sort",
                child.placement.engine,
                child.placement.site,
                child.rows,
                child.bytes,
                child.rows,
                child.bytes,
            )
        )
        return child

    if isinstance(plan, Limit):
        child = _profile(plan.child, stats, placement, profile)
        out_rows = min(child.rows, float(plan.count))
        ratio = out_rows / child.rows if child.rows else 0.0
        return _Annotated(out_rows, child.bytes * ratio, child.column_stats, child.placement)

    if isinstance(plan, Distinct):
        child = _profile(plan.child, stats, placement, profile)
        out_rows = child.rows * 0.5
        profile.operators.append(
            OperatorProfile(
                "distinct",
                child.placement.engine,
                child.placement.site,
                child.rows,
                child.bytes,
                out_rows,
                child.bytes * 0.5,
            )
        )
        return _Annotated(out_rows, child.bytes * 0.5, child.column_stats, child.placement)

    if isinstance(plan, SubqueryAlias):
        return _profile(plan.child, stats, placement, profile)

    raise PlanError(f"profiler: unknown plan node {type(plan).__name__}")


def _move_to(
    annotated: _Annotated, target: EnginePlacement, profile: PlanProfile
) -> _Annotated:
    """Record a transfer if the relation is not already at ``target``."""
    if annotated.placement.site != target.site or annotated.placement.engine != target.engine:
        if annotated.placement.site != target.site:
            profile.transfers.append(
                TransferProfile(annotated.placement.site, target.site, annotated.bytes)
            )
        return _Annotated(annotated.rows, annotated.bytes, annotated.column_stats, target)
    return annotated


def _profile_join(
    plan: Join,
    stats: dict[str, TableStats],
    placement: Placement,
    profile: PlanProfile,
) -> _Annotated:
    from repro.plans.execution import split_equi_condition

    left = _profile(plan.left, stats, placement, profile)
    right = _profile(plan.right, stats, placement, profile)
    target = placement.execution
    left = _move_to(left, target, profile)
    right = _move_to(right, target, profile)

    left_width = len(plan.left.output_fields())
    if plan.kind == "cross" or plan.condition is None:
        out_rows = left.rows * right.rows
    else:
        pairs, residual = split_equi_condition(plan.condition, left_width)
        if pairs:
            left_idx, right_idx = pairs[0]
            left_stats = left.column_stats[left_idx]
            right_stats = right.column_stats[right_idx]
            out_rows = estimate_equi_join_rows(
                left.rows,
                right.rows,
                left_stats.distinct_count if left_stats else left.rows,
                right_stats.distinct_count if right_stats else right.rows,
            )
        else:
            out_rows = left.rows * right.rows / 3.0
        if residual is not None:
            combined = left.column_stats + right.column_stats
            out_rows *= estimate_selectivity(residual, StatsContext(combined))
    if plan.kind == "left":
        out_rows = max(out_rows, left.rows)

    width = _row_width(plan.output_fields())
    out_bytes = out_rows * width
    profile.operators.append(
        OperatorProfile(
            "join",
            target.engine,
            target.site,
            left.rows + right.rows,
            left.bytes + right.bytes,
            out_rows,
            out_bytes,
            detail=plan.kind,
        )
    )
    return _Annotated(out_rows, out_bytes, left.column_stats + right.column_stats, target)


def _estimate_groups(plan: Aggregate, child: _Annotated) -> float:
    if not plan.group_exprs:
        return 1.0
    distinct_product = 1.0
    for expr in plan.group_exprs:
        if isinstance(expr, BoundColumn):
            stats = child.column_stats[expr.index]
            distinct_product *= stats.distinct_count if stats else math.sqrt(max(child.rows, 1.0))
        else:
            distinct_product *= math.sqrt(max(child.rows, 1.0))
        if distinct_product > child.rows:
            break
    return max(1.0, min(child.rows, distinct_product))


def _profile_subqueries(
    predicate: Expr,
    stats: dict[str, TableStats],
    placement: Placement,
    profile: PlanProfile,
) -> None:
    """Cost subquery plans inside a predicate.

    Engines execute a correlated scalar subquery as a rewritten aggregate
    plus join (one pass over the subquery's input), so each subquery plan
    is profiled once at the execution placement.
    """
    for node in walk(predicate):
        if isinstance(node, (ScalarSubquery, InSubquery, Exists)) and node.plan is not None:
            _profile(node.plan, stats, placement, profile)
