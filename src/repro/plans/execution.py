"""Local plan executor: the semantic ground truth.

Executes bound logical plans over in-memory tables.  Engines in
:mod:`repro.engines` *cost* plans; this module *runs* them, so tests can
check query results independently of any simulation.

Internals operate on ``(fields, rows)`` pairs (rows are tuples) and only
the final result is materialised as a :class:`~repro.relational.table.Table`
— this sidesteps duplicate-name restrictions on intermediate join schemas.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import ExecutionError, PlanError
from repro.plans.catalog import Catalog
from repro.plans.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SubqueryAlias,
    transform_plan,
)
from repro.relational.expressions import (
    AggregateCall,
    BinaryOp,
    BoundColumn,
    EvalContext,
    Exists,
    Expr,
    InSubquery,
    Literal,
    OuterColumn,
    ScalarSubquery,
    evaluate,
    transform,
    walk,
)
from repro.relational.schema import Column, Field, Schema
from repro.relational.table import Table

Rows = list[tuple]


def execute_sql(sql_text: str, catalog: Catalog, name: str = "result") -> Table:
    """Parse, bind and execute ``sql_text`` against ``catalog``."""
    from repro.plans.binder import plan_sql
    from repro.plans.optimizer import optimize

    plan = optimize(plan_sql(sql_text, catalog))
    return execute_plan(plan, catalog, name)


def execute_plan(plan: LogicalPlan, catalog: Catalog, name: str = "result") -> Table:
    """Execute a bound logical plan and materialise the result table."""
    executor = _Executor(catalog)
    rows = executor.run(plan)
    fields = plan.output_fields()
    schema = Schema([Column(n, f.dtype, f.nullable) for n, f in zip(_unique_names(fields), fields)])
    return Table.from_rows(name, schema, rows, coerce=False)


def _unique_names(fields: list[Field]) -> list[str]:
    seen: dict[str, int] = {}
    names = []
    for field in fields:
        base = field.name
        count = seen.get(base.lower(), 0)
        seen[base.lower()] = count + 1
        names.append(base if count == 0 else f"{base}_{count + 1}")
    return names


class _Executor:
    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._subquery_cache: dict[tuple, Any] = {}
        self._context = EvalContext(self._run_subquery_expr)

    # Dispatch -----------------------------------------------------------

    def run(self, plan: LogicalPlan) -> Rows:
        if isinstance(plan, Scan):
            return self._run_scan(plan)
        if isinstance(plan, Filter):
            return self._run_filter(plan)
        if isinstance(plan, Project):
            return self._run_project(plan)
        if isinstance(plan, Join):
            return self._run_join(plan)
        if isinstance(plan, Aggregate):
            return self._run_aggregate(plan)
        if isinstance(plan, Sort):
            return self._run_sort(plan)
        if isinstance(plan, Limit):
            return self.run(plan.child)[: plan.count]
        if isinstance(plan, Distinct):
            return self._run_distinct(plan)
        if isinstance(plan, SubqueryAlias):
            return self.run(plan.child)
        raise PlanError(f"executor: unknown plan node {type(plan).__name__}")

    # Operators ----------------------------------------------------------

    def _run_scan(self, plan: Scan) -> Rows:
        table = self._catalog.table(plan.table_name)
        return table.to_rows()

    def _run_filter(self, plan: Filter) -> Rows:
        rows = self.run(plan.child)
        predicate = plan.predicate
        return [
            row for row in rows if evaluate(predicate, row, self._context) is True
        ]

    def _run_project(self, plan: Project) -> Rows:
        rows = self.run(plan.child)
        exprs = plan.exprs
        return [
            tuple(evaluate(expr, row, self._context) for expr in exprs) for row in rows
        ]

    def _run_distinct(self, plan: Distinct) -> Rows:
        rows = self.run(plan.child)
        seen: set = set()
        out: Rows = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out

    def _run_sort(self, plan: Sort) -> Rows:
        rows = self.run(plan.child)
        # Stable multi-key sort: apply keys from last to first.  NULLs sort
        # last regardless of direction.
        for key in reversed(plan.keys):
            index, descending = key.index, key.descending

            def sort_key(row, index=index, descending=descending):
                value = row[index]
                if value is None:
                    return (1, 0)
                return (0, _Directional(value, descending))

            rows = sorted(rows, key=sort_key)
        return rows

    def _run_join(self, plan: Join) -> Rows:
        left_rows = self.run(plan.left)
        right_rows = self.run(plan.right)
        left_width = len(plan.left.output_fields())
        right_width = len(plan.right.output_fields())

        if plan.kind == "cross" or plan.condition is None:
            if plan.kind == "left":
                raise PlanError("left join requires a condition")
            return [l + r for l in left_rows for r in right_rows]

        equi_pairs, residual = split_equi_condition(plan.condition, left_width)
        null_pad = (None,) * right_width

        if equi_pairs:
            rows = self._hash_join(
                left_rows, right_rows, equi_pairs, residual, plan.kind, null_pad
            )
        else:
            rows = self._nested_loop_join(
                left_rows, right_rows, plan.condition, plan.kind, null_pad
            )
        return rows

    def _hash_join(
        self,
        left_rows: Rows,
        right_rows: Rows,
        equi_pairs: list[tuple[int, int]],
        residual: Expr | None,
        kind: str,
        null_pad: tuple,
    ) -> Rows:
        left_key_idx = [l for l, _ in equi_pairs]
        right_key_idx = [r for _, r in equi_pairs]
        buckets: dict[tuple, Rows] = {}
        for row in right_rows:
            key = tuple(row[i] for i in right_key_idx)
            if any(v is None for v in key):
                continue  # NULL never equi-matches
            buckets.setdefault(key, []).append(row)
        out: Rows = []
        for left_row in left_rows:
            key = tuple(left_row[i] for i in left_key_idx)
            matched = False
            if not any(v is None for v in key):
                for right_row in buckets.get(key, ()):
                    combined = left_row + right_row
                    if residual is None or evaluate(residual, combined, self._context) is True:
                        out.append(combined)
                        matched = True
            if kind == "left" and not matched:
                out.append(left_row + null_pad)
        return out

    def _nested_loop_join(
        self,
        left_rows: Rows,
        right_rows: Rows,
        condition: Expr,
        kind: str,
        null_pad: tuple,
    ) -> Rows:
        out: Rows = []
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if evaluate(condition, combined, self._context) is True:
                    out.append(combined)
                    matched = True
            if kind == "left" and not matched:
                out.append(left_row + null_pad)
        return out

    def _run_aggregate(self, plan: Aggregate) -> Rows:
        rows = self.run(plan.child)
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        global_agg = not plan.group_exprs

        def make_states() -> list[_AggState]:
            return [_AggState(agg) for agg in plan.aggregates]

        if global_agg:
            groups[()] = make_states()
            order.append(())

        for row in rows:
            key = tuple(
                evaluate(g, row, self._context) for g in plan.group_exprs
            )
            states = groups.get(key)
            if states is None:
                states = make_states()
                groups[key] = states
                order.append(key)
            for state in states:
                state.update(row, self._context)

        return [key + tuple(s.result() for s in groups[key]) for key in order]

    # Subqueries ----------------------------------------------------------

    def _run_subquery_expr(self, node: Expr, outer_row: tuple) -> Any:
        if isinstance(node, ScalarSubquery):
            rows = self._run_correlated(node.plan, node.correlations, outer_row, node)
            if not rows:
                return None
            if len(rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            return rows[0][0]
        if isinstance(node, Exists):
            correlations = _plan_correlations(node.plan)
            rows = self._run_correlated(node.plan, correlations, outer_row, node)
            exists = bool(rows)
            return (not exists) if node.negated else exists
        if isinstance(node, InSubquery):
            value = evaluate(node.operand, outer_row, self._context)
            correlations = _plan_correlations(node.plan)
            rows = self._run_correlated(node.plan, correlations, outer_row, node)
            if value is None:
                return None
            values = [row[0] for row in rows]
            if value in [v for v in values if v is not None]:
                return not node.negated
            if any(v is None for v in values):
                return None
            return node.negated
        raise PlanError(f"unknown subquery node {node!r}")

    def _run_correlated(
        self,
        plan: LogicalPlan,
        correlations: tuple[tuple[int, str], ...],
        outer_row: tuple,
        node: Expr,
    ) -> Rows:
        key = (id(node), tuple(outer_row[i] for i, _ in correlations))
        cached = self._subquery_cache.get(key)
        if cached is not None:
            return cached
        substituted = plan
        if correlations:
            bindings = {i: outer_row[i] for i, _ in correlations}

            def substitute(expr: Expr) -> Expr:
                return transform(
                    expr,
                    lambda e: Literal(bindings[e.index])
                    if isinstance(e, OuterColumn) and e.index in bindings
                    else None,
                )

            substituted = transform_plan(plan, substitute)
        rows = _Executor(self._catalog).run(substituted)
        self._subquery_cache[key] = rows
        return rows


def _plan_correlations(plan: LogicalPlan) -> tuple[tuple[int, str], ...]:
    from repro.plans.binder import _correlations

    return _correlations(plan)


class _Directional:
    """Wrap a value so ``sorted`` can honour per-key direction."""

    __slots__ = ("value", "descending")

    def __init__(self, value, descending: bool):
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_Directional") -> bool:
        if self.descending:
            return other.value < self.value
        return self.value < other.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Directional) and self.value == other.value


class _AggState:
    """Accumulator for one aggregate call."""

    __slots__ = ("call", "count", "total", "minimum", "maximum", "distinct_values")

    def __init__(self, call: AggregateCall):
        self.call = call
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.distinct_values: set | None = set() if call.distinct else None

    def update(self, row: tuple, context: EvalContext) -> None:
        call = self.call
        if call.arg is None:  # count(*)
            self.count += 1
            return
        value = evaluate(call.arg, row, context)
        if value is None:
            return
        if self.distinct_values is not None:
            if value in self.distinct_values:
                return
            self.distinct_values.add(value)
        self.count += 1
        if call.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif call.func == "min":
            self.minimum = value if self.minimum is None else min(self.minimum, value)
        elif call.func == "max":
            self.maximum = value if self.maximum is None else max(self.maximum, value)

    def result(self) -> Any:
        func = self.call.func
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "avg":
            return None if self.count == 0 else self.total / self.count
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        raise PlanError(f"unknown aggregate {func!r}")


def split_equi_condition(
    condition: Expr, left_width: int
) -> tuple[list[tuple[int, int]], Expr | None]:
    """Split a join condition into equi-key pairs and a residual predicate.

    Returns ``(pairs, residual)`` where each pair is ``(left_index,
    right_index_local)`` — the right index is relative to the right row.
    Conjuncts that are not simple cross-side column equalities stay in the
    residual (bound against the combined row).
    """
    pairs: list[tuple[int, int]] = []
    residual_parts: list[Expr] = []
    for conjunct in _conjuncts(condition):
        pair = _as_equi_pair(conjunct, left_width)
        if pair is not None:
            pairs.append(pair)
        else:
            residual_parts.append(conjunct)
    residual: Expr | None = None
    for part in residual_parts:
        residual = part if residual is None else BinaryOp("AND", residual, part)
    return pairs, residual


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _as_equi_pair(expr: Expr, left_width: int) -> tuple[int, int] | None:
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, BoundColumn) and isinstance(right, BoundColumn)):
        return None
    if left.index < left_width <= right.index:
        return left.index, right.index - left_width
    if right.index < left_width <= left.index:
        return right.index, left.index - left_width
    return None
