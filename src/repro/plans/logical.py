"""Logical plan operators.

Expressions inside logical nodes are *bound*: column references are
positional (:class:`~repro.relational.expressions.BoundColumn`) into the
child operator's output row.  Every node knows its output fields, so the
binder can resolve references level by level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.common.errors import PlanError
from repro.relational.expressions import (
    AggregateCall,
    Expr,
    infer_dtype,
)
from repro.relational.schema import Field


class LogicalPlan:
    """Base class for logical operators."""

    def children(self) -> list["LogicalPlan"]:
        raise NotImplementedError

    def output_fields(self) -> list[Field]:
        raise NotImplementedError

    def map_expressions(self, fn: Callable[[Expr], Expr]) -> "LogicalPlan":
        """Rebuild this node with ``fn`` applied to each of its expressions.

        ``fn`` receives whole expressions (not sub-nodes); recursion into
        children is the caller's concern — see :func:`transform_plan`.
        """
        raise NotImplementedError

    def walk(self) -> Iterator["LogicalPlan"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self._describe()]
        lines.extend(child.pretty(indent + 1) for child in self.children())
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Read a base table under an alias."""

    table_name: str
    alias: str
    fields: tuple[Field, ...]

    def children(self) -> list[LogicalPlan]:
        return []

    def output_fields(self) -> list[Field]:
        return list(self.fields)

    def map_expressions(self, fn):
        return self

    def _describe(self) -> str:
        return f"Scan({self.table_name} AS {self.alias})"


@dataclass(frozen=True)
class Filter(LogicalPlan):
    """Keep rows where ``predicate`` evaluates to exactly TRUE."""

    child: LogicalPlan
    predicate: Expr

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_fields(self) -> list[Field]:
        return self.child.output_fields()

    def map_expressions(self, fn):
        return Filter(self.child, fn(self.predicate))

    def _describe(self) -> str:
        return f"Filter({self.predicate.sql()})"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Compute output expressions, one per named output column."""

    child: LogicalPlan
    exprs: tuple[Expr, ...]
    names: tuple[str, ...]

    def __post_init__(self):
        if len(self.exprs) != len(self.names):
            raise PlanError(
                f"Project: {len(self.exprs)} expressions for {len(self.names)} names"
            )

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_fields(self) -> list[Field]:
        return [
            Field(name, infer_dtype(expr), qualifier=None)
            for name, expr in zip(self.names, self.exprs)
        ]

    def map_expressions(self, fn):
        return Project(self.child, tuple(fn(e) for e in self.exprs), self.names)

    def _describe(self) -> str:
        inner = ", ".join(
            f"{e.sql()} AS {n}" for e, n in zip(self.exprs, self.names)
        )
        return f"Project({inner})"


JOIN_KINDS = ("inner", "left", "cross")


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Join two inputs; output row = left row ++ right row.

    For ``left`` joins, unmatched left rows are padded with NULLs on the
    right.  ``condition`` is bound against the concatenated fields.
    """

    left: LogicalPlan
    right: LogicalPlan
    kind: str
    condition: Expr | None = None

    def __post_init__(self):
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {self.kind!r}")
        if self.kind == "cross" and self.condition is not None:
            raise PlanError("cross join cannot have a condition")

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def output_fields(self) -> list[Field]:
        left_fields = self.left.output_fields()
        right_fields = self.right.output_fields()
        if self.kind == "left":
            right_fields = [
                Field(f.name, f.dtype, f.qualifier, nullable=True) for f in right_fields
            ]
        return left_fields + right_fields

    def map_expressions(self, fn):
        condition = fn(self.condition) if self.condition is not None else None
        return Join(self.left, self.right, self.kind, condition)

    def _describe(self) -> str:
        cond = self.condition.sql() if self.condition is not None else "TRUE"
        return f"Join({self.kind}, {cond})"


@dataclass(frozen=True)
class Aggregate(LogicalPlan):
    """Group by ``group_exprs`` and compute ``aggregates`` per group.

    Output row layout: group values first (named ``group_names``), then one
    slot per aggregate call.  With no groups the node produces exactly one
    row (global aggregation), even over empty input.
    """

    child: LogicalPlan
    group_exprs: tuple[Expr, ...]
    group_names: tuple[str, ...]
    aggregates: tuple[AggregateCall, ...]
    aggregate_names: tuple[str, ...]

    def __post_init__(self):
        if len(self.group_exprs) != len(self.group_names):
            raise PlanError("Aggregate: group expr/name arity mismatch")
        if len(self.aggregates) != len(self.aggregate_names):
            raise PlanError("Aggregate: aggregate expr/name arity mismatch")

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_fields(self) -> list[Field]:
        fields = [
            Field(name, infer_dtype(expr), qualifier=None)
            for name, expr in zip(self.group_names, self.group_exprs)
        ]
        fields.extend(
            Field(name, infer_dtype(agg), qualifier=None)
            for name, agg in zip(self.aggregate_names, self.aggregates)
        )
        return fields

    def map_expressions(self, fn):
        return Aggregate(
            self.child,
            tuple(fn(e) for e in self.group_exprs),
            self.group_names,
            tuple(fn(a) for a in self.aggregates),
            self.aggregate_names,
        )

    def _describe(self) -> str:
        groups = ", ".join(e.sql() for e in self.group_exprs) or "<global>"
        aggs = ", ".join(a.sql() for a in self.aggregates)
        return f"Aggregate(groups=[{groups}], aggs=[{aggs}])"


@dataclass(frozen=True)
class SortKey:
    """One sort key: output column position + direction."""

    index: int
    descending: bool = False


@dataclass(frozen=True)
class Sort(LogicalPlan):
    """Stable sort by output column positions, NULLs last."""

    child: LogicalPlan
    keys: tuple[SortKey, ...]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_fields(self) -> list[Field]:
        return self.child.output_fields()

    def map_expressions(self, fn):
        return self

    def _describe(self) -> str:
        keys = ", ".join(
            f"${k.index}{' DESC' if k.descending else ''}" for k in self.keys
        )
        return f"Sort({keys})"


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """Keep the first ``count`` rows."""

    child: LogicalPlan
    count: int

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_fields(self) -> list[Field]:
        return self.child.output_fields()

    def map_expressions(self, fn):
        return self

    def _describe(self) -> str:
        return f"Limit({self.count})"


@dataclass(frozen=True)
class Distinct(LogicalPlan):
    """Remove duplicate rows."""

    child: LogicalPlan

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_fields(self) -> list[Field]:
        return self.child.output_fields()

    def map_expressions(self, fn):
        return self


@dataclass(frozen=True)
class SubqueryAlias(LogicalPlan):
    """Re-qualify a derived table's output: ``(SELECT ...) AS alias(cols)``.

    Pure metadata — rows pass through unchanged; only the visible field
    names/qualifier differ.
    """

    child: LogicalPlan
    alias: str
    fields: tuple[Field, ...]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_fields(self) -> list[Field]:
        return list(self.fields)

    def map_expressions(self, fn):
        return self

    def _describe(self) -> str:
        return f"SubqueryAlias({self.alias})"


def with_children(plan: LogicalPlan, children: list[LogicalPlan]) -> LogicalPlan:
    """Rebuild ``plan`` with new children (same arity)."""
    current = plan.children()
    if len(current) != len(children):
        raise PlanError(
            f"{type(plan).__name__}: expected {len(current)} children, got {len(children)}"
        )
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, Filter):
        return Filter(children[0], plan.predicate)
    if isinstance(plan, Project):
        return Project(children[0], plan.exprs, plan.names)
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.kind, plan.condition)
    if isinstance(plan, Aggregate):
        return Aggregate(
            children[0],
            plan.group_exprs,
            plan.group_names,
            plan.aggregates,
            plan.aggregate_names,
        )
    if isinstance(plan, Sort):
        return Sort(children[0], plan.keys)
    if isinstance(plan, Limit):
        return Limit(children[0], plan.count)
    if isinstance(plan, Distinct):
        return Distinct(children[0])
    if isinstance(plan, SubqueryAlias):
        return SubqueryAlias(children[0], plan.alias, plan.fields)
    raise PlanError(f"with_children: unknown plan node {type(plan).__name__}")


def transform_plan(plan: LogicalPlan, expr_fn: Callable[[Expr], Expr]) -> LogicalPlan:
    """Apply ``expr_fn`` to every expression in the plan tree, bottom-up."""
    new_children = [transform_plan(child, expr_fn) for child in plan.children()]
    rebuilt = with_children(plan, new_children)
    return rebuilt.map_expressions(expr_fn)
