"""MIDAS: Medical Data Management System on a cloud federation.

The paper's top-level system (Figure 1): hospital data spread across
cloud providers — Patient on cloud A in Hive, GeneralInfo on cloud B in
PostgreSQL (Example 2.1) — queried through IReS with DREAM estimating
costs and the multi-objective optimizer choosing execution plans under a
user policy (time vs money).
"""

from repro.midas.schema import MEDICAL_SCHEMAS, medical_schema
from repro.midas.generator import MedicalDataGenerator
from repro.midas.queries import MEDICAL_QUERIES, example_21_query
from repro.midas.system import MidasSystem

__all__ = [
    "MEDICAL_SCHEMAS",
    "medical_schema",
    "MedicalDataGenerator",
    "MEDICAL_QUERIES",
    "example_21_query",
    "MidasSystem",
]
