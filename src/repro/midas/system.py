"""The MIDAS system facade.

Builds the whole stack of Figure 1 in one object: the paper's two-cloud
federation (Amazon/Hive + Microsoft/PostgreSQL), the medical catalog with
its deployment, DREAM-backed IReS, and a query API that takes SQL-free
template submissions with a user policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.federation import CloudFederation, paper_federation
from repro.cloud.variability import LoadProcess, default_federation_load
from repro.common.rng import RngStream
from repro.engines.simulate import MultiEngineSimulator
from repro.ires.deployment import Deployment
from repro.ires.enumerator import QepEnumerator
from repro.ires.modelling import DreamStrategy, EstimationStrategy
from repro.ires.platform import IReSPlatform, SubmissionResult
from repro.ires.policy import UserPolicy
from repro.midas.generator import MedicalDataGenerator
from repro.midas.queries import MEDICAL_QUERIES
from repro.plans.catalog import Catalog
from repro.plans.physical import EnginePlacement
from repro.plans.statistics import compute_table_stats

#: Default placement of the medical tables (Example 2.1 + extensions).
DEFAULT_DEPLOYMENT = {
    "patient": EnginePlacement("hive", "cloud-a"),
    "generalinfo": EnginePlacement("postgresql", "cloud-b"),
    "labresult": EnginePlacement("postgresql", "cloud-b"),
    "imagingstudy": EnginePlacement("hive", "cloud-a"),
}

DEFAULT_INSTANCE_TYPES = {"cloud-a": "a1.xlarge", "cloud-b": "B2S"}
DEFAULT_NODE_OPTIONS = {"cloud-a": [1, 2, 4, 8], "cloud-b": [1, 2, 4]}


class MidasSystem:
    """MIDAS end to end: call :meth:`warm_up` then :meth:`query`."""

    def __init__(
        self,
        patient_count: int = 2000,
        seed: int = 7,
        strategy: EstimationStrategy | None = None,
        federation: CloudFederation | None = None,
        load: LoadProcess | None = None,
    ):
        self.seed = seed
        self.federation = federation or paper_federation()
        tables = MedicalDataGenerator(patient_count, seed).generate_all()
        self.catalog = Catalog(tables.values())
        self.stats = {name: compute_table_stats(t) for name, t in tables.items()}
        self.deployment = Deployment(dict(DEFAULT_DEPLOYMENT))
        enumerator = QepEnumerator(
            self.federation,
            self.deployment,
            DEFAULT_INSTANCE_TYPES,
            DEFAULT_NODE_OPTIONS,
        )
        simulator = MultiEngineSimulator(
            self.federation,
            load=load or default_federation_load(RngStream(seed, "midas-load")),
            seed=seed,
        )
        self.platform = IReSPlatform(
            catalog=self.catalog,
            stats=self.stats,
            deployment=self.deployment,
            enumerator=enumerator,
            simulator=simulator,
            strategy=strategy or DreamStrategy(r2_required=0.8, max_window=24),
        )
        for template in MEDICAL_QUERIES.values():
            self.platform.register_template(template)
        self._tick = 0
        self._rng = RngStream(seed, "midas-params")

    # ------------------------------------------------------------------

    def next_tick(self) -> int:
        tick = self._tick
        self._tick += 1
        return tick

    def warm_up(self, query_key: str, runs: int = 12) -> None:
        """Populate the query's history with exploratory executions.

        Rotates through the QEP space so the Modelling module sees varied
        (features -> cost) observations, as a production IReS would after
        profiling runs.
        """
        template = MEDICAL_QUERIES[query_key]
        for run in range(runs):
            params = template.sample_params(self._rng)
            _request, candidates = self.platform.candidates_for(query_key, params)
            candidate = candidates[int(self._rng.integers(0, len(candidates)))]
            self.platform.observe(query_key, params, candidate, self.next_tick())

    def query(
        self,
        query_key: str,
        params: dict | None = None,
        policy: UserPolicy | None = None,
    ) -> SubmissionResult:
        """Submit one medical query through the full IReS pipeline."""
        template = MEDICAL_QUERIES[query_key]
        if params is None:
            params = template.sample_params(self._rng)
        return self.platform.submit(
            query_key, params, policy or UserPolicy(), self.next_tick()
        )

    def execute_locally(self, query_key: str, params: dict | None = None):
        """Run the query on the local executor (semantic ground truth)."""
        from repro.plans.execution import execute_sql

        template = MEDICAL_QUERIES[query_key]
        if params is None:
            params = template.sample_params(self._rng)
        return execute_sql(template.render(params), self.catalog)
