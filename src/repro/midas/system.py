"""The MIDAS system facade.

Builds the whole stack of Figure 1 in one object: the paper's two-cloud
federation (Amazon/Hive + Microsoft/PostgreSQL), the medical catalog with
its deployment, and a :class:`~repro.federation.FederationGateway` over
DREAM-backed IReS.  ``MidasSystem`` assembles the *environment*; every
query flows through the gateway's typed envelope API (``midas.gateway``
is the full surface — sessions, batches, backend registry).
"""

from __future__ import annotations

from repro.cloud.federation import CloudFederation, paper_federation
from repro.cloud.variability import LoadProcess, default_federation_load
from repro.common.rng import RngStream
from repro.engines.simulate import MultiEngineSimulator
from repro.federation import (
    FederationConfig,
    FederationGateway,
    ObserveRequest,
    Principal,
    SubmissionReport,
    SubmitRequest,
)
from repro.ires.deployment import Deployment
from repro.ires.enumerator import QepEnumerator
from repro.ires.modelling import EstimationStrategy
from repro.ires.policy import UserPolicy
from repro.midas.generator import MedicalDataGenerator
from repro.midas.queries import MEDICAL_QUERIES
from repro.plans.catalog import Catalog
from repro.plans.physical import EnginePlacement
from repro.plans.statistics import compute_table_stats

#: Default placement of the medical tables (Example 2.1 + extensions).
DEFAULT_DEPLOYMENT = {
    "patient": EnginePlacement("hive", "cloud-a"),
    "generalinfo": EnginePlacement("postgresql", "cloud-b"),
    "labresult": EnginePlacement("postgresql", "cloud-b"),
    "imagingstudy": EnginePlacement("hive", "cloud-a"),
}

DEFAULT_INSTANCE_TYPES = {"cloud-a": "a1.xlarge", "cloud-b": "B2S"}
DEFAULT_NODE_OPTIONS = {"cloud-a": [1, 2, 4, 8], "cloud-b": [1, 2, 4]}

#: MIDAS's default gateway configuration (the paper's DREAM settings).
DEFAULT_CONFIG = FederationConfig(
    strategy="dream-incremental", r2_required=0.8, max_window=24
)


class MidasSystem:
    """MIDAS end to end: call :meth:`warm_up` then :meth:`query`."""

    def __init__(
        self,
        patient_count: int = 2000,
        seed: int = 7,
        config: FederationConfig | None = None,
        strategy: EstimationStrategy | None = None,
        federation: CloudFederation | None = None,
        load: LoadProcess | None = None,
    ):
        self.seed = seed
        self.federation = federation or paper_federation()
        tables = MedicalDataGenerator(patient_count, seed).generate_all()
        self.catalog = Catalog(tables.values())
        self.stats = {name: compute_table_stats(t) for name, t in tables.items()}
        self.deployment = Deployment(dict(DEFAULT_DEPLOYMENT))
        enumerator = QepEnumerator(
            self.federation,
            self.deployment,
            DEFAULT_INSTANCE_TYPES,
            DEFAULT_NODE_OPTIONS,
        )
        simulator = MultiEngineSimulator(
            self.federation,
            load=load or default_federation_load(RngStream(seed, "midas-load")),
            seed=seed,
        )
        self.gateway = FederationGateway(
            catalog=self.catalog,
            stats=self.stats,
            deployment=self.deployment,
            enumerator=enumerator,
            simulator=simulator,
            config=config or DEFAULT_CONFIG,
            strategy=strategy,
        )
        for template in MEDICAL_QUERIES.values():
            self.gateway.register_template(template)
        self._rng = RngStream(seed, "midas-params")

    @property
    def platform(self):
        """The engine room behind the gateway (white-box introspection)."""
        return self.gateway.engine

    # ------------------------------------------------------------------

    def next_tick(self) -> int:
        return self.gateway.next_tick()

    def warm_up(
        self, query_key: str, runs: int = 12, principal: Principal | None = None
    ) -> None:
        """Populate the query's history with exploratory executions.

        Rotates through the QEP space so the Modelling module sees varied
        (features -> cost) observations, as a production IReS would after
        profiling runs.  ``principal`` is the tenant identity the
        profiling runs are performed on behalf of (needed when the
        gateway's governance plane requires identity or scopes rules by
        role/purpose).
        """
        template = MEDICAL_QUERIES[query_key]
        for _run in range(runs):
            params = template.sample_params(self._rng)
            candidates = self.gateway.candidates(
                query_key, params, principal=principal
            )
            candidate = candidates[int(self._rng.integers(0, len(candidates)))]
            self.gateway.observe(
                ObserveRequest(query_key, params, principal=principal),
                candidate=candidate,
            )

    def query(
        self,
        query_key: str,
        params: dict | None = None,
        policy: UserPolicy | None = None,
        principal: Principal | None = None,
    ) -> SubmissionReport:
        """Submit one medical query through the full IReS pipeline."""
        template = MEDICAL_QUERIES[query_key]
        if params is None:
            params = template.sample_params(self._rng)
        return self.gateway.submit(
            SubmitRequest(
                query_key, params, policy or UserPolicy(), principal=principal
            )
        )

    def execute_locally(self, query_key: str, params: dict | None = None):
        """Run the query on the local executor (semantic ground truth)."""
        from repro.plans.execution import execute_sql

        template = MEDICAL_QUERIES[query_key]
        if params is None:
            params = template.sample_params(self._rng)
        return execute_sql(template.render(params), self.catalog)
