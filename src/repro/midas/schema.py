"""Federated medical schema.

``patient`` and ``generalinfo`` are the two tables of the paper's
Example 2.1 (shared key ``uid``); ``labresult`` and ``imagingstudy``
extend the scenario so examples can exercise more than one join.
Column names follow the paper's DICOM-flavoured spelling.
"""

from __future__ import annotations

from repro.common.errors import SchemaError
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType

I = DataType.INTEGER
F = DataType.FLOAT
S = DataType.STRING
D = DataType.DATE

MEDICAL_SCHEMAS: dict[str, Schema] = {
    "patient": Schema(
        [
            Column("uid", I, nullable=False),
            Column("patientsex", S, nullable=False),
            Column("patientage", I, nullable=False),
            Column("patientweight", F),
            Column("hospital", S, nullable=False),
            Column("admissiondate", D, nullable=False),
        ]
    ),
    "generalinfo": Schema(
        [
            Column("uid", I, nullable=False),
            Column("generalnames", S, nullable=False),
            Column("diagnosis", S, nullable=False),
            Column("severity", I, nullable=False),
            Column("treatmentcost", F, nullable=False),
        ]
    ),
    "labresult": Schema(
        [
            Column("resultid", I, nullable=False),
            Column("uid", I, nullable=False),
            Column("testname", S, nullable=False),
            Column("value", F, nullable=False),
            Column("testdate", D, nullable=False),
        ]
    ),
    "imagingstudy": Schema(
        [
            Column("studyid", I, nullable=False),
            Column("uid", I, nullable=False),
            Column("modality", S, nullable=False),
            Column("bodypart", S, nullable=False),
            Column("sizebytes", I, nullable=False),
            Column("studydate", D, nullable=False),
        ]
    ),
}


def medical_schema(table_name: str) -> Schema:
    try:
        return MEDICAL_SCHEMAS[table_name.lower()]
    except KeyError:
        known = ", ".join(sorted(MEDICAL_SCHEMAS))
        raise SchemaError(f"unknown medical table {table_name!r}; one of: {known}") from None
