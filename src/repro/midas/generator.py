"""Synthetic federated medical data.

Deterministic under a seed.  Mobile patients are modelled the way the
paper motivates them: each patient is owned by one hospital but a
fraction have records in *both* systems (their GeneralInfo row lives in
the other cloud's database), which is what makes the cross-cloud join
necessary at all.
"""

from __future__ import annotations

import datetime

from repro.common.rng import RngStream
from repro.common.validation import require_positive
from repro.midas.schema import medical_schema
from repro.relational.table import Table

DIAGNOSES = (
    "hypertension", "diabetes mellitus", "asthma", "pneumonia", "fracture",
    "migraine", "anemia", "arrhythmia", "dermatitis", "nephritis",
    "rare metabolic disorder", "autoimmune encephalitis",
)
TEST_NAMES = ("hemoglobin", "glucose", "creatinine", "sodium", "potassium", "crp")
MODALITIES = ("CT", "MR", "US", "XR", "PET")
BODY_PARTS = ("HEAD", "CHEST", "ABDOMEN", "KNEE", "SPINE")
HOSPITALS = ("hospital-a", "hospital-b")

FIRST_NAMES = (
    "Ada", "Bela", "Chidi", "Dana", "Emil", "Fatou", "Goran", "Hana",
    "Ines", "Jonas", "Kira", "Luca", "Mara", "Nils", "Oona", "Pavel",
)
LAST_NAMES = (
    "Almeida", "Bauer", "Chen", "Diallo", "Eriksen", "Fontaine", "Garcia",
    "Hansen", "Ivanova", "Jensen", "Kovacs", "Lindqvist", "Moreau", "Novak",
)

ADMISSION_MIN = datetime.date(2014, 1, 1)
ADMISSION_MAX = datetime.date(2018, 12, 31)


class MedicalDataGenerator:
    """Generates the four medical tables."""

    def __init__(self, patient_count: int = 2000, seed: int = 7):
        self.patient_count = int(require_positive(patient_count, "patient_count"))
        self.seed = seed

    def generate_all(self) -> dict[str, Table]:
        return {
            "patient": self.patient(),
            "generalinfo": self.generalinfo(),
            "labresult": self.labresult(),
            "imagingstudy": self.imagingstudy(),
        }

    def _stream(self, table: str) -> RngStream:
        return RngStream(self.seed, "midas", table)

    def patient(self) -> Table:
        rng = self._stream("patient")
        span = (ADMISSION_MAX - ADMISSION_MIN).days
        rows = []
        for uid in range(1, self.patient_count + 1):
            rows.append(
                [
                    uid,
                    "F" if rng.random() < 0.5 else "M",
                    int(rng.integers(0, 100)),
                    round(float(rng.uniform(3.0, 120.0)), 1),
                    HOSPITALS[int(rng.integers(0, len(HOSPITALS)))],
                    ADMISSION_MIN + datetime.timedelta(days=int(rng.integers(0, span + 1))),
                ]
            )
        return Table.from_rows("patient", medical_schema("patient"), rows)

    def generalinfo(self) -> Table:
        rng = self._stream("generalinfo")
        rows = []
        for uid in range(1, self.patient_count + 1):
            # ~90% of patients have a GeneralInfo record (mobile patients
            # may not have been registered in the second system yet).
            if rng.random() < 0.1:
                continue
            first = FIRST_NAMES[int(rng.integers(0, len(FIRST_NAMES)))]
            last = LAST_NAMES[int(rng.integers(0, len(LAST_NAMES)))]
            rows.append(
                [
                    uid,
                    f"{last}^{first}",
                    DIAGNOSES[int(rng.integers(0, len(DIAGNOSES)))],
                    int(rng.integers(1, 6)),
                    round(float(rng.lognormal(7.0, 1.0)), 2),
                ]
            )
        return Table.from_rows("generalinfo", medical_schema("generalinfo"), rows)

    def labresult(self) -> Table:
        rng = self._stream("labresult")
        rows = []
        result_id = 1
        span = (ADMISSION_MAX - ADMISSION_MIN).days
        for uid in range(1, self.patient_count + 1):
            for _ in range(int(rng.integers(0, 6))):
                rows.append(
                    [
                        result_id,
                        uid,
                        TEST_NAMES[int(rng.integers(0, len(TEST_NAMES)))],
                        round(float(rng.lognormal(1.5, 0.8)), 2),
                        ADMISSION_MIN
                        + datetime.timedelta(days=int(rng.integers(0, span + 1))),
                    ]
                )
                result_id += 1
        return Table.from_rows("labresult", medical_schema("labresult"), rows)

    def imagingstudy(self) -> Table:
        rng = self._stream("imagingstudy")
        rows = []
        study_id = 1
        span = (ADMISSION_MAX - ADMISSION_MIN).days
        for uid in range(1, self.patient_count + 1):
            for _ in range(int(rng.integers(0, 3))):
                rows.append(
                    [
                        study_id,
                        uid,
                        MODALITIES[int(rng.integers(0, len(MODALITIES)))],
                        BODY_PARTS[int(rng.integers(0, len(BODY_PARTS)))],
                        int(rng.integers(1, 512)) * 1024 * 1024,
                        ADMISSION_MIN
                        + datetime.timedelta(days=int(rng.integers(0, span + 1))),
                    ]
                )
                study_id += 1
        return Table.from_rows("imagingstudy", medical_schema("imagingstudy"), rows)
