"""Medical query templates.

``example_21_query`` is the query of the paper's Example 2.1 — patient
demographics joined with general info across two clouds/engines — with a
selectivity parameter so repeated runs vary the processed data size the
way a real clinic workload would.
"""

from __future__ import annotations

from repro.common.rng import RngStream
from repro.tpch.queries import QueryTemplate


def _example21_params(rng: RngStream) -> dict:
    return {"min_age": int(rng.integers(0, 60))}


example_21_query = QueryTemplate(
    key="medical-demographics",
    title="Example 2.1: patient demographics across clouds",
    tables=("patient", "generalinfo"),
    template="""
select
    p.patientsex,
    i.generalnames
from
    patient p,
    generalinfo i
where
    p.uid = i.uid
    and p.patientage >= {min_age}
""",
    parameter_generator=_example21_params,
)


def _severity_params(rng: RngStream) -> dict:
    return {
        "severity": int(rng.integers(2, 6)),
        "min_age": int(rng.integers(0, 70)),
    }


severe_cases_query = QueryTemplate(
    key="medical-severe-cases",
    title="Severe diagnoses per sex (cross-cloud aggregate)",
    tables=("patient", "generalinfo"),
    template="""
select
    p.patientsex,
    i.diagnosis,
    count(*) as cases,
    avg(i.treatmentcost) as avg_cost
from
    patient p,
    generalinfo i
where
    p.uid = i.uid
    and i.severity >= {severity}
    and p.patientage >= {min_age}
group by
    p.patientsex,
    i.diagnosis
order by
    cases desc
""",
    parameter_generator=_severity_params,
)


def _lab_params(rng: RngStream) -> dict:
    tests = ("hemoglobin", "glucose", "creatinine", "sodium", "potassium", "crp")
    return {"testname": tests[int(rng.integers(0, len(tests)))]}


lab_followup_query = QueryTemplate(
    key="medical-lab-followup",
    title="Patients with abnormal lab results",
    tables=("patient", "labresult"),
    template="""
select
    p.uid,
    p.patientsex,
    count(*) as abnormal_results
from
    patient p,
    labresult l
where
    p.uid = l.uid
    and l.testname = '{testname}'
    and l.value > (
        select 1.5 * avg(l2.value)
        from labresult l2
        where l2.testname = '{testname}'
    )
group by
    p.uid,
    p.patientsex
order by
    abnormal_results desc
limit 20
""",
    parameter_generator=_lab_params,
)

MEDICAL_QUERIES: dict[str, QueryTemplate] = {
    q.key: q
    for q in (example_21_query, severe_cases_query, lab_followup_query)
}
