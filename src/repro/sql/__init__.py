"""SQL front end: lexer, parser and AST for the TPC-H subset.

The dialect covers what the paper's workload needs: ``SELECT`` queries with
inner/left-outer joins, ``WHERE``, ``GROUP BY``/``HAVING``, ``ORDER BY``,
``LIMIT``, derived tables, scalar/``IN``/``EXISTS`` subqueries (including
correlated ones), ``CASE``, ``LIKE``, ``BETWEEN``, ``IN`` lists, date
literals and interval arithmetic.
"""

from repro.sql.parser import parse_select
from repro.sql.ast import (
    SelectStatement,
    SelectItem,
    NamedTable,
    DerivedTable,
    JoinClause,
    OrderItem,
)

__all__ = [
    "parse_select",
    "SelectStatement",
    "SelectItem",
    "NamedTable",
    "DerivedTable",
    "JoinClause",
    "OrderItem",
]
