"""Recursive-descent SQL parser for the TPC-H subset.

Entry point: :func:`parse_select`.  The grammar, roughly::

    select    := SELECT [DISTINCT] items FROM from_clause
                 [WHERE expr] [GROUP BY exprs] [HAVING expr]
                 [ORDER BY order_items] [LIMIT n]
    from      := table_ref ((',' | join_kind JOIN) table_ref [ON expr])*
    table_ref := ident [AS? alias] | '(' select ')' AS? alias ['(' idents ')']
    expr      := or-precedence expression grammar (see _parse_or and below)

Expression precedence, loosest first: OR, AND, NOT, predicates
(comparison, LIKE, IN, BETWEEN, IS NULL), additive, multiplicative,
unary minus, primary.
"""

from __future__ import annotations

import datetime

from repro.common.errors import SqlError
from repro.relational.expressions import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Exists,
    Expr,
    AggregateCall,
    AGGREGATE_FUNCTIONS,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    ScalarSubquery,
    UnaryOp,
)
from repro.relational.types import Interval, parse_date
from repro.sql.ast import (
    DerivedTable,
    JoinClause,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize


def parse_select(text: str) -> SelectStatement:
    """Parse one SELECT statement from ``text``.

    Raises :class:`~repro.common.errors.SqlError` on any syntax problem,
    with the character position of the offending token.
    """
    parser = _Parser(tokenize(text), text)
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token], text: str):
        self._tokens = tokens
        self._text = text
        self._pos = 0

    # Token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlError:
        token = self._peek()
        return SqlError(f"{message} (near {token.value!r} at {token.position})", token.position)

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._peek().matches_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise self._error(f"expected {keyword.upper()}")

    def _accept_symbol(self, *symbols: str) -> bool:
        if self._peek().matches_symbol(*symbols):
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            raise self._error(f"expected {symbol!r}")

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error("expected identifier")
        self._advance()
        return token.value

    def expect_eof(self) -> None:
        self._accept_symbol(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # Statement ---------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = self._parse_select_items()
        from_clause = None
        if self._accept_keyword("from"):
            from_clause = self._parse_from()
        where = self._parse_expr() if self._accept_keyword("where") else None
        group_by: tuple = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = tuple(self._parse_expr_list())
        having = self._parse_expr() if self._accept_keyword("having") else None
        order_by: tuple = ()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = tuple(self._parse_order_items())
        limit = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER or "." in token.value:
                raise self._error("LIMIT expects an integer")
            self._advance()
            limit = int(token.value)
        return SelectStatement(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_items(self) -> list:
        items: list = [self._parse_select_item()]
        while self._accept_symbol(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self):
        if self._peek().matches_symbol("*"):
            self._advance()
            return Star()
        if (
            self._peek().type is TokenType.IDENT
            and self._peek(1).matches_symbol(".")
            and self._peek(2).matches_symbol("*")
        ):
            qualifier = self._expect_ident()
            self._advance()
            self._advance()
            return Star(qualifier)
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    # FROM clause -------------------------------------------------------

    def _parse_from(self) -> TableRef:
        left = self._parse_table_ref()
        while True:
            if self._accept_symbol(","):
                right = self._parse_table_ref()
                left = JoinClause(left, right, "cross", None)
                continue
            kind = self._parse_join_kind()
            if kind is None:
                return left
            right = self._parse_table_ref()
            condition = None
            if self._accept_keyword("on"):
                condition = self._parse_expr()
            elif kind != "cross":
                raise self._error("JOIN requires an ON condition")
            left = JoinClause(left, right, kind, condition)

    def _parse_join_kind(self) -> str | None:
        if self._accept_keyword("join"):
            return "inner"
        if self._peek().matches_keyword("inner") and self._peek(1).matches_keyword("join"):
            self._advance()
            self._advance()
            return "inner"
        if self._peek().matches_keyword("left"):
            self._advance()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return "left"
        if self._peek().matches_keyword("right"):
            self._advance()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return "right"
        return None

    def _parse_table_ref(self) -> TableRef:
        if self._accept_symbol("("):
            query = self.parse_statement()
            self._expect_symbol(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            column_aliases: tuple[str, ...] = ()
            if self._accept_symbol("("):
                names = [self._expect_ident()]
                while self._accept_symbol(","):
                    names.append(self._expect_ident())
                self._expect_symbol(")")
                column_aliases = tuple(names)
            return DerivedTable(query, alias, column_aliases)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return NamedTable(name, alias)

    # ORDER BY ----------------------------------------------------------

    def _parse_order_items(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self._accept_symbol(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, descending)

    # Expressions -------------------------------------------------------

    def _parse_expr_list(self) -> list[Expr]:
        exprs = [self._parse_expr()]
        while self._accept_symbol(","):
            exprs.append(self._parse_expr())
        return exprs

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        negated = False
        if self._peek().matches_keyword("not"):
            following = self._peek(1)
            if following.matches_keyword("like", "in", "between"):
                self._advance()
                negated = True
        if self._accept_keyword("like"):
            token = self._peek()
            if token.type is not TokenType.STRING:
                raise self._error("LIKE expects a string literal pattern")
            self._advance()
            return Like(left, token.value, negated)
        if self._accept_keyword("in"):
            return self._parse_in_tail(left, negated)
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if self._accept_keyword("is"):
            is_negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, is_negated)
        if negated:
            raise self._error("dangling NOT")
        for symbol in ("<>", "<=", ">=", "=", "<", ">"):
            if self._accept_symbol(symbol):
                return BinaryOp(symbol, left, self._parse_additive())
        return left

    def _parse_in_tail(self, operand: Expr, negated: bool) -> Expr:
        self._expect_symbol("(")
        if self._peek().matches_keyword("select"):
            query = self.parse_statement()
            self._expect_symbol(")")
            return InSubquery(operand, query, negated)
        values = [self._parse_expr()]
        while self._accept_symbol(","):
            values.append(self._parse_expr())
        self._expect_symbol(")")
        return InList(operand, tuple(values), negated)

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self._accept_symbol("+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self._accept_symbol("-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self._accept_symbol("*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self._accept_symbol("/"):
                left = BinaryOp("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept_symbol("-"):
            return UnaryOp("-", self._parse_unary())
        if self._accept_symbol("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.matches_keyword("null"):
            self._advance()
            return Literal(None)
        if token.matches_keyword("true"):
            self._advance()
            return Literal(True)
        if token.matches_keyword("false"):
            self._advance()
            return Literal(False)
        if token.matches_keyword("date"):
            self._advance()
            literal = self._peek()
            if literal.type is not TokenType.STRING:
                raise self._error("DATE expects a string literal")
            self._advance()
            return Literal(parse_date(literal.value))
        if token.matches_keyword("interval"):
            return self._parse_interval()
        if token.matches_keyword("case"):
            return self._parse_case()
        if token.matches_keyword("exists"):
            self._advance()
            self._expect_symbol("(")
            query = self.parse_statement()
            self._expect_symbol(")")
            return Exists(query, negated=False)
        if token.matches_symbol("("):
            self._advance()
            if self._peek().matches_keyword("select"):
                query = self.parse_statement()
                self._expect_symbol(")")
                return ScalarSubquery(query)
            expr = self._parse_expr()
            self._expect_symbol(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._parse_identifier_expression()
        raise self._error("expected expression")

    def _parse_interval(self) -> Expr:
        self._expect_keyword("interval")
        quantity_token = self._peek()
        if quantity_token.type is TokenType.STRING:
            self._advance()
            try:
                quantity = int(quantity_token.value)
            except ValueError:
                raise self._error("INTERVAL quantity must be an integer") from None
        elif quantity_token.type is TokenType.NUMBER and "." not in quantity_token.value:
            self._advance()
            quantity = int(quantity_token.value)
        else:
            raise self._error("INTERVAL expects an integer quantity")
        unit_token = self._peek()
        if not unit_token.matches_keyword("year", "month", "day"):
            raise self._error("INTERVAL unit must be YEAR, MONTH or DAY")
        self._advance()
        if unit_token.value == "year":
            return Literal(Interval(years=quantity))
        if unit_token.value == "month":
            return Literal(Interval(months=quantity))
        return Literal(Interval(days=quantity))

    def _parse_case(self) -> Expr:
        self._expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self._accept_keyword("when"):
            condition = self._parse_expr()
            self._expect_keyword("then")
            value = self._parse_expr()
            whens.append((condition, value))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        else_ = self._parse_expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return CaseWhen(tuple(whens), else_)

    def _parse_identifier_expression(self) -> Expr:
        name = self._expect_ident()
        if self._peek().matches_symbol("("):
            return self._parse_function_call(name)
        if self._peek().matches_symbol(".") and self._peek(1).type is TokenType.IDENT:
            self._advance()
            column = self._expect_ident()
            return ColumnRef(column, qualifier=name)
        return ColumnRef(name)

    def _parse_function_call(self, name: str) -> Expr:
        lowered = name.lower()
        self._expect_symbol("(")
        if lowered not in AGGREGATE_FUNCTIONS:
            raise self._error(f"unknown function {name!r}")
        if self._accept_symbol("*"):
            self._expect_symbol(")")
            if lowered != "count":
                raise self._error(f"{name}(*) is only valid for count")
            return AggregateCall("count", None)
        distinct = self._accept_keyword("distinct")
        arg = self._parse_expr()
        self._expect_symbol(")")
        return AggregateCall(lowered, arg, distinct)
