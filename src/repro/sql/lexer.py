"""Hand-written SQL lexer.

Produces a flat token list consumed by the recursive-descent parser.
Keywords are case-insensitive; identifiers keep their original spelling.
``--`` starts a line comment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import SqlError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "in", "like", "between", "is", "null",
    "case", "when", "then", "else", "end", "join", "inner", "left",
    "right", "outer", "on", "exists", "distinct", "date", "interval",
    "asc", "desc", "year", "month", "day", "true", "false",
}

SYMBOLS = ("<>", "<=", ">=", "(", ")", ",", ".", "+", "-", "*", "/", "=", "<", ">", ";")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords

    def matches_symbol(self, *symbols: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value in symbols


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if char == "'":
            value, i = _lex_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if char.isdigit() or (char == "." and i + 1 < length and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < length and (text[i].isdigit() or text[i] == "."):
                i += 1
            number = text[start:i]
            if number.count(".") > 1:
                raise SqlError(f"malformed number {number!r}", start)
            tokens.append(Token(TokenType.NUMBER, number, start))
            continue
        if char.isalpha() or char == "_":
            start = i
            i += 1
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlError(f"unexpected character {char!r}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _lex_string(text: str, start: int) -> tuple[str, int]:
    """Lex a single-quoted string with ``''`` escaping; returns (value, end)."""
    i = start + 1
    parts: list[str] = []
    while i < len(text):
        char = text[i]
        if char == "'":
            if i + 1 < len(text) and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(char)
        i += 1
    raise SqlError("unterminated string literal", start)
