"""Parsed-query AST.

Statements reference expression nodes from
:mod:`repro.relational.expressions`; subquery expression nodes carry the
nested :class:`SelectStatement` in their ``plan`` slot until the planner
replaces it with a bound logical plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.relational.expressions import Expr


@dataclass(frozen=True)
class SelectItem:
    """One projection item: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class Star:
    """``SELECT *`` (optionally qualified: ``alias.*``)."""

    qualifier: str | None = None


@dataclass(frozen=True)
class NamedTable:
    """A base-table reference ``name [AS alias]``."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable:
    """A subquery in FROM: ``(SELECT ...) AS alias (col1, col2, ...)``."""

    query: "SelectStatement"
    alias: str
    column_aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class JoinClause:
    """A join between two table references."""

    left: "TableRef"
    right: "TableRef"
    kind: str  # "inner" | "left" | "cross"
    condition: Expr | None = None


TableRef = Union[NamedTable, DerivedTable, JoinClause]


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an expression (often a bare column/alias) + direction."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT query."""

    items: tuple[Union[SelectItem, Star], ...]
    from_clause: TableRef | None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False
