"""Problem abstraction for the multi-objective optimizers.

The QEP optimisation problem is *discrete*: a finite (possibly huge,
Example 3.1: 18,200) set of candidate plans, each with a cost vector that
may be expensive to evaluate (a model prediction).  The optimizers work
on an :class:`EnumeratedProblem` which lazily evaluates and caches
objective vectors by candidate index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

from repro.common.errors import ValidationError

P = TypeVar("P")


@dataclass(frozen=True)
class Candidate(Generic[P]):
    """A candidate solution: payload + its evaluated objective vector."""

    payload: P
    objectives: tuple[float, ...]


class EnumeratedProblem(Generic[P]):
    """A finite decision space with a vector objective function."""

    def __init__(
        self,
        candidates: Sequence[P],
        evaluate: Callable[[P], Sequence[float]],
        objective_count: int,
    ):
        if not candidates:
            raise ValidationError("problem needs at least one candidate")
        if objective_count < 1:
            raise ValidationError("problem needs at least one objective")
        self._candidates = list(candidates)
        self._evaluate = evaluate
        self.objective_count = objective_count
        self._cache: dict[int, tuple[float, ...]] = {}
        self.evaluation_count = 0

    @property
    def size(self) -> int:
        return len(self._candidates)

    def candidate(self, index: int) -> P:
        return self._candidates[index]

    def objectives(self, index: int) -> tuple[float, ...]:
        """Evaluate (cached) the objective vector of candidate ``index``."""
        cached = self._cache.get(index)
        if cached is None:
            raw = tuple(float(v) for v in self._evaluate(self._candidates[index]))
            if len(raw) != self.objective_count:
                raise ValidationError(
                    f"objective function returned {len(raw)} values, "
                    f"expected {self.objective_count}"
                )
            self._cache[index] = raw
            self.evaluation_count += 1
            cached = raw
        return cached

    def evaluated(self, index: int) -> Candidate[P]:
        return Candidate(self._candidates[index], self.objectives(index))

    def evaluate_all(self) -> list[Candidate[P]]:
        """Exhaustive evaluation (used for exact fronts on small spaces)."""
        return [self.evaluated(i) for i in range(self.size)]
