"""Problem abstraction for the multi-objective optimizers.

The QEP optimisation problem is *discrete*: a finite (possibly huge,
Example 3.1: 18,200) set of candidate plans, each with a cost vector that
may be expensive to evaluate (a model prediction).  The optimizers work
on an :class:`EnumeratedProblem` which lazily evaluates and caches
objective vectors by candidate index.

Two evaluation backends:

* **scalar** — the original per-candidate callable; always present, and
  the equivalence oracle for the batch path;
* **matrix** — an optional ``evaluate_batch(indices) -> (k, d) array``
  callable (one :meth:`~repro.core.cost_model.MultiCostModel.predict_matrix`
  call for a whole NSGA population).  :meth:`EnumeratedProblem.objectives_matrix`
  routes through it, caches every row, and keeps ``evaluation_count``
  exact, so genetic generations cost one vectorised prediction instead
  of a Python round trip per offspring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

import numpy as np

from repro.common.errors import ValidationError

P = TypeVar("P")


@dataclass(frozen=True)
class Candidate(Generic[P]):
    """A candidate solution: payload + its evaluated objective vector."""

    payload: P
    objectives: tuple[float, ...]


class EnumeratedProblem(Generic[P]):
    """A finite decision space with a vector objective function."""

    def __init__(
        self,
        candidates: Sequence[P],
        evaluate: Callable[[P], Sequence[float]],
        objective_count: int,
        evaluate_batch: Callable[[Sequence[int]], np.ndarray] | None = None,
    ):
        if not candidates:
            raise ValidationError("problem needs at least one candidate")
        if objective_count < 1:
            raise ValidationError("problem needs at least one objective")
        self._candidates = list(candidates)
        self._evaluate = evaluate
        self._evaluate_batch = evaluate_batch
        self.objective_count = objective_count
        self._cache: dict[int, tuple[float, ...]] = {}
        self.evaluation_count = 0

    @property
    def size(self) -> int:
        return len(self._candidates)

    @property
    def has_matrix_backend(self) -> bool:
        return self._evaluate_batch is not None

    def candidate(self, index: int) -> P:
        return self._candidates[index]

    def _store(self, index: int, raw: tuple[float, ...]) -> None:
        if len(raw) != self.objective_count:
            raise ValidationError(
                f"objective function returned {len(raw)} values, "
                f"expected {self.objective_count}"
            )
        self._cache[index] = raw
        self.evaluation_count += 1

    def objectives(self, index: int) -> tuple[float, ...]:
        """Evaluate (cached) the objective vector of candidate ``index``."""
        cached = self._cache.get(index)
        if cached is None:
            if self._evaluate_batch is not None:
                # Through the batch backend even for one row, so single
                # and population evaluations agree bit for bit.
                self.objectives_matrix([index])
                return self._cache[index]
            raw = tuple(float(v) for v in self._evaluate(self._candidates[index]))
            self._store(index, raw)
            cached = raw
        return cached

    def objectives_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """The (k, d) objective matrix of a whole population.

        Uncached rows are evaluated in **one** ``evaluate_batch`` call
        (falling back to the scalar callable without a batch backend),
        cached individually, and counted once each in
        ``evaluation_count`` — duplicate indices in the population cost
        nothing extra.
        """
        index_list = [int(i) for i in indices]
        missing = list(dict.fromkeys(i for i in index_list if i not in self._cache))
        if missing:
            if self._evaluate_batch is not None:
                rows = np.asarray(self._evaluate_batch(missing), dtype=float)
                if rows.shape != (len(missing), self.objective_count):
                    raise ValidationError(
                        f"batch objective function returned shape {rows.shape}, "
                        f"expected {(len(missing), self.objective_count)}"
                    )
                for index, row in zip(missing, rows):
                    self._store(index, tuple(float(v) for v in row))
            else:
                for index in missing:
                    raw = tuple(
                        float(v) for v in self._evaluate(self._candidates[index])
                    )
                    self._store(index, raw)
        return np.array([self._cache[i] for i in index_list], dtype=float)

    def evaluated(self, index: int) -> Candidate[P]:
        return Candidate(self._candidates[index], self.objectives(index))

    def evaluate_all(self) -> list[Candidate[P]]:
        """Exhaustive evaluation (used for exact fronts on small spaces).

        With a matrix backend this is one batched prediction for every
        not-yet-cached candidate, not ``size`` scalar calls.
        """
        self.objectives_matrix(range(self.size))
        return [self.evaluated(i) for i in range(self.size)]
