"""MOEA/D: multi-objective evolutionary algorithm based on decomposition.

The paper's §2.4 lists decomposition-based optimizers (Zhang & Li 2007,
its reference [36]) among the algorithms the Multi-Objective Optimizer
may use.  This implementation decomposes the biobjective problem into a
set of weighted Tchebycheff subproblems with evenly spread weight
vectors; each subproblem evolves by mating within its weight
neighbourhood, as in the original algorithm, over the same enumerated
decision space the NSGA variants use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.rng import RngStream
from repro.moqp.nsga2 import fast_non_dominated_sort
from repro.moqp.problem import Candidate, EnumeratedProblem


@dataclass(frozen=True)
class MoeadConfig:
    #: Number of decomposition subproblems (= population size).
    subproblems: int = 30
    generations: int = 30
    neighbourhood: int = 5
    crossover_probability: float = 0.9
    mutation_probability: float = 0.15
    seed: int = 41


def tchebycheff(objectives: tuple[float, ...], weights: tuple[float, ...],
                ideal: list[float]) -> float:
    """Weighted Tchebycheff scalarisation against the ideal point."""
    return max(
        max(w, 1e-6) * abs(v - z) for w, v, z in zip(weights, objectives, ideal)
    )


class Moead:
    """Decomposition-based optimizer over an :class:`EnumeratedProblem`.

    Supports two objectives (the paper's time/money pair).  Returns the
    non-dominated members of the final population.
    """

    def __init__(self, config: MoeadConfig | None = None):
        self.config = config or MoeadConfig()
        if self.config.subproblems < 2:
            raise ValidationError("MOEA/D needs at least 2 subproblems")

    def optimise(self, problem: EnumeratedProblem) -> list[Candidate]:
        if problem.objective_count != 2:
            raise ValidationError(
                f"this MOEA/D implementation is biobjective; got "
                f"{problem.objective_count} objectives"
            )
        config = self.config
        rng = RngStream(config.seed, "moead")
        count = min(config.subproblems, problem.size)

        # Evenly spread weight vectors (w, 1-w) and their neighbourhoods.
        weights = [
            (i / (count - 1), 1.0 - i / (count - 1)) for i in range(count)
        ]
        neighbourhoods = []
        for i in range(count):
            order = sorted(range(count), key=lambda j: abs(i - j))
            neighbourhoods.append(order[: max(2, config.neighbourhood)])

        population = [
            int(x) for x in rng.choice(problem.size, size=count, replace=False)
        ]
        objective_of = [problem.objectives(i) for i in population]
        ideal = [
            min(o[axis] for o in objective_of) for axis in range(2)
        ]

        for _generation in range(config.generations):
            for i in range(count):
                mates = neighbourhoods[i]
                a = population[mates[int(rng.integers(0, len(mates)))]]
                b = population[mates[int(rng.integers(0, len(mates)))]]
                if rng.random() < config.crossover_probability:
                    low, high = sorted((a, b))
                    child = int(rng.integers(low, high + 1))
                else:
                    child = a
                if rng.random() < config.mutation_probability:
                    child = int(rng.integers(0, problem.size))
                child_objectives = problem.objectives(child)
                for axis in range(2):
                    ideal[axis] = min(ideal[axis], child_objectives[axis])
                # Update the neighbourhood where the child improves the
                # Tchebycheff value.
                for j in mates:
                    current = tchebycheff(objective_of[j], weights[j], ideal)
                    challenger = tchebycheff(child_objectives, weights[j], ideal)
                    if challenger < current:
                        population[j] = child
                        objective_of[j] = child_objectives

        fronts = fast_non_dominated_sort(objective_of)
        unique: dict[int, Candidate] = {}
        for position in fronts[0]:
            unique[population[position]] = problem.evaluated(population[position])
        return list(unique.values())
