"""Weighted Sum Model (Helff & Orazio 2016 — reference [17]).

Scalarises a cost vector with user weights after min-max normalisation
over the candidate set (so metrics with different units are comparable).
The paper uses WSM in two roles:

* as the *final step* of the GA pipeline (Algorithm 2 picks the plan with
  the minimum weighted sum inside the Pareto/constraint set), and
* as the *baseline optimisation strategy* of stock IReS (Figure 3's right
  branch), where the scalarised value drives the whole search — with the
  known drawback that a weight change forces re-optimisation.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ValidationError


def normalise_objectives(
    vectors: Sequence[Sequence[float]],
) -> list[tuple[float, ...]]:
    """Min-max normalise each objective over the candidate set."""
    if not vectors:
        return []
    dimension = len(vectors[0])
    lows = [min(v[axis] for v in vectors) for axis in range(dimension)]
    highs = [max(v[axis] for v in vectors) for axis in range(dimension)]
    normalised = []
    for vector in vectors:
        row = []
        for axis in range(dimension):
            span = highs[axis] - lows[axis]
            row.append((vector[axis] - lows[axis]) / span if span > 0 else 0.0)
        normalised.append(tuple(row))
    return normalised


class WeightedSumModel:
    """Scalarisation with fixed weights."""

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise ValidationError("WSM needs at least one weight")
        if any(w < 0 for w in weights):
            raise ValidationError(f"weights must be non-negative, got {list(weights)}")
        total = float(sum(weights))
        if total <= 0:
            raise ValidationError("weights must not all be zero")
        self.weights = tuple(w / total for w in weights)

    def scalarise(self, vector: Sequence[float]) -> float:
        if len(vector) != len(self.weights):
            raise ValidationError(
                f"vector has {len(vector)} metrics, model has {len(self.weights)} weights"
            )
        return float(sum(w * v for w, v in zip(self.weights, vector)))

    def best_index(self, vectors: Sequence[Sequence[float]], normalise: bool = True) -> int:
        """Index of the candidate with the smallest weighted sum."""
        if not vectors:
            raise ValidationError("no candidates to choose from")
        pool = normalise_objectives(vectors) if normalise else list(vectors)
        scores = [self.scalarise(v) for v in pool]
        return min(range(len(scores)), key=scores.__getitem__)
