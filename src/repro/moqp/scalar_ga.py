"""Single-objective GA over an enumerated space.

This is the engine of the paper's *WSM-based* MOQP branch (Figure 3,
right): the cost vector is scalarised by the Weighted Sum Model first and
a plain genetic algorithm minimises the scalar.  Every weight change
restarts the whole search — the drawback the paper cites from [13, 20].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import RngStream
from repro.moqp.problem import Candidate, EnumeratedProblem
from repro.moqp.wsm import WeightedSumModel, normalise_objectives


@dataclass(frozen=True)
class ScalarGaConfig:
    population_size: int = 40
    generations: int = 30
    crossover_probability: float = 0.9
    mutation_probability: float = 0.15
    seed: int = 31


class ScalarGeneticOptimizer:
    """Minimises WSM(objectives) with tournament selection."""

    def __init__(self, weights, config: ScalarGaConfig | None = None):
        self.model = WeightedSumModel(weights)
        self.config = config or ScalarGaConfig()

    def optimise(self, problem: EnumeratedProblem) -> Candidate:
        config = self.config
        rng = RngStream(config.seed, "scalar-ga")
        population_size = min(config.population_size, problem.size)
        population = [
            int(i) for i in rng.choice(problem.size, size=population_size, replace=False)
        ]

        def fitness_of(members: list[int]) -> dict[int, float]:
            vectors = [problem.objectives(i) for i in members]
            normalised = normalise_objectives(vectors)
            return {
                member: self.model.scalarise(vector)
                for member, vector in zip(members, normalised)
            }

        best_index = population[0]
        best_value = float("inf")
        for _generation in range(config.generations):
            fitness = fitness_of(population)
            for member, value in fitness.items():
                if value < best_value:
                    best_value = value
                    best_index = member

            def tournament() -> int:
                a, b = (int(x) for x in rng.integers(0, len(population), size=2))
                return (
                    population[a]
                    if fitness[population[a]] <= fitness[population[b]]
                    else population[b]
                )

            offspring: list[int] = []
            while len(offspring) < population_size:
                parent_a, parent_b = tournament(), tournament()
                if rng.random() < config.crossover_probability:
                    low, high = sorted((parent_a, parent_b))
                    child = int(rng.integers(low, high + 1))
                else:
                    child = parent_a
                if rng.random() < config.mutation_probability:
                    child = int(rng.integers(0, problem.size))
                offspring.append(child)
            population = list(dict.fromkeys(offspring)) or [best_index]

        # Final sweep including the last population.
        fitness = fitness_of(population)
        for member, value in fitness.items():
            if value < best_value:
                best_value = value
                best_index = member
        return problem.evaluated(best_index)
