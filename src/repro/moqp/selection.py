"""BestInPareto — Algorithm 2 of the paper.

Given the Pareto plan set P, user weights S and constraints B::

    function BestInPareto(P, S, B):
        PB <- { p in P | for all n <= |B| : c_n(p) <= B_n }
        if PB is not empty:
            return argmin_{p in PB} WeightSum(PB, S)
        else:
            return argmin_{p in P}  WeightSum(P, S)

i.e. prefer plans satisfying every constraint; fall back to the whole
Pareto set when nothing does.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ValidationError
from repro.moqp.problem import Candidate
from repro.moqp.wsm import WeightedSumModel


def best_in_pareto(
    pareto_set: Sequence[Candidate],
    weights: Sequence[float],
    constraints: Sequence[float | None] | None = None,
) -> Candidate:
    """Select the final QEP from a Pareto set (Algorithm 2).

    ``constraints`` aligns with the objective vector; ``None`` entries are
    unconstrained.  Weighted sums are computed over min-max-normalised
    objectives of the set being ranked, exactly as the WSM step expects.
    """
    if not pareto_set:
        raise ValidationError("BestInPareto needs a non-empty Pareto set")
    model = WeightedSumModel(weights)

    within: list[Candidate] = []
    if constraints is not None:
        if len(constraints) > len(pareto_set[0].objectives):
            raise ValidationError(
                f"{len(constraints)} constraints for "
                f"{len(pareto_set[0].objectives)} objectives"
            )
        for candidate in pareto_set:
            satisfied = all(
                bound is None or candidate.objectives[n] <= bound
                for n, bound in enumerate(constraints)
            )
            if satisfied:
                within.append(candidate)

    pool = within if within else list(pareto_set)
    index = model.best_index([c.objectives for c in pool])
    return pool[index]
