"""Multi-Objective Query Processing (MOQP).

Implements the paper's §2.3 formalism (plan dominance, Pareto regions),
the optimizers it discusses — NSGA-II [10], the authors' grid-based
NSGA-G [22], and the Weighted Sum Model [17] — plus ``BestInPareto``
(Algorithm 2), the final plan-selection step.
"""

from repro.moqp.dominance import (
    dominates,
    strictly_dominates,
    dominance_region,
    strict_dominance_region,
    pareto_region,
    pareto_dominance_matrix,
    dominated_by_any,
)
from repro.moqp.pareto import (
    pareto_front_indices,
    pareto_front_indices_py,
    pareto_front,
    hypervolume_2d,
    spread_2d,
)
from repro.moqp.problem import Candidate, EnumeratedProblem
from repro.moqp.nsga2 import Nsga2, Nsga2Config
from repro.moqp.nsga_g import NsgaG, NsgaGConfig
from repro.moqp.moead import Moead, MoeadConfig
from repro.moqp.wsm import WeightedSumModel, normalise_objectives
from repro.moqp.selection import best_in_pareto

__all__ = [
    "dominates",
    "strictly_dominates",
    "dominance_region",
    "strict_dominance_region",
    "pareto_region",
    "pareto_dominance_matrix",
    "dominated_by_any",
    "pareto_front_indices",
    "pareto_front_indices_py",
    "pareto_front",
    "hypervolume_2d",
    "spread_2d",
    "Candidate",
    "EnumeratedProblem",
    "Nsga2",
    "Nsga2Config",
    "NsgaG",
    "NsgaGConfig",
    "Moead",
    "MoeadConfig",
    "WeightedSumModel",
    "normalise_objectives",
    "best_in_pareto",
]
