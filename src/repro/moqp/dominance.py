"""Plan dominance and Pareto regions (paper §2.3, Eq. 1-4).

Three granularities:

* **vector dominance** — compare two cost vectors (all metrics <=, resp. <);
* **matrix dominance** — the vectorized kernel behind the numpy-native
  Pareto/NSGA path: pairwise dominance of whole point sets in a handful
  of broadcasts, blockwise so memory stays bounded at Example 3.1 scale
  (18,200 points);
* **parametric dominance** — the paper's ``Dom``/``StriDom``/``PaReg``
  operate over a *parameter space* X: plan costs are functions
  ``c_n(p, x)`` and the region where one plan dominates another is a
  subset of X.  We evaluate the regions over a caller-supplied sample of
  parameter vectors, which is exactly how a region would be used
  downstream (measure-theoretic exactness is not needed by the system).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.common.errors import ValidationError

CostFunction = Callable[[object, object], Sequence[float]]
# signature: (plan, parameter_vector) -> cost vector

#: Rows per broadcast block of the vectorized kernels: bounds peak
#: scratch memory at ~block² booleans per objective regardless of n.
DEFAULT_BLOCK_SIZE = 1024


def _check(a: Sequence[float], b: Sequence[float]) -> None:
    if len(a) != len(b):
        raise ValidationError(f"cost vectors differ in length: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValidationError("cost vectors must be non-empty")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Eq. 1: every component of ``a`` <= the matching component of ``b``."""
    _check(a, b)
    return all(x <= y for x, y in zip(a, b))


def strictly_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Eq. 3: every component strictly smaller."""
    _check(a, b)
    return all(x < y for x, y in zip(a, b))


def pareto_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Standard Pareto dominance: <= everywhere and < somewhere."""
    _check(a, b)
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def objective_matrix(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Validate ``points`` into an (n, d) float matrix.

    Mirrors :func:`_check` for whole point sets: ragged rows raise the
    same :class:`ValidationError` a pairwise length mismatch would, and a
    non-empty set of zero-length vectors is rejected.
    """
    try:
        matrix = np.asarray(points, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"cost vectors are not rectangular: {exc}") from None
    if matrix.size == 0 and matrix.ndim <= 1 and len(points) == 0:
        return matrix.reshape(0, 0)
    if matrix.ndim != 2:
        raise ValidationError(
            f"cost vectors are not rectangular: got array shape {matrix.shape}"
        )
    if matrix.shape[1] == 0 and matrix.shape[0] > 1:
        raise ValidationError("cost vectors must be non-empty")
    return matrix


def pareto_dominance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The (n, m) boolean matrix ``D[i, j] = a_i pareto-dominates b_j``.

    ``a`` is (n, d), ``b`` is (m, d); one broadcast per comparison
    operator, no Python-level pair loop.  Semantics match
    :func:`pareto_dominates` exactly, including ``inf`` components
    (``inf <= inf`` holds, ``inf < inf`` does not) and NaN components
    (every comparison false: a NaN row neither dominates nor is
    dominated).
    """
    left = a[:, None, :]
    right = b[None, :, :]
    return (left <= right).all(axis=-1) & (left < right).any(axis=-1)


def dominated_by_any(
    points: np.ndarray,
    others: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Boolean mask: ``points[j]`` is pareto-dominated by some ``others[i]``.

    Blockwise over both operands, so peak scratch memory is
    ``O(block_size² · d)`` however large the point sets get.  A
    standalone dominance query for downstream consumers;
    :func:`~repro.moqp.pareto.pareto_front_indices` uses the same
    broadcast kernel but interleaves its screening with the
    lexicographic sweep, so it does not route through this function.
    """
    points = np.asarray(points, dtype=float)
    others = np.asarray(others, dtype=float)
    dominated = np.zeros(points.shape[0], dtype=bool)
    if others.shape[0] == 0 or points.shape[0] == 0:
        return dominated
    for start in range(0, points.shape[0], block_size):
        stop = min(start + block_size, points.shape[0])
        block = points[start:stop]
        hit = np.zeros(stop - start, dtype=bool)
        for other_start in range(0, others.shape[0], block_size):
            other_stop = min(other_start + block_size, others.shape[0])
            alive = ~hit
            if not alive.any():
                break
            hit[alive] |= pareto_dominance_matrix(
                others[other_start:other_stop], block[alive]
            ).any(axis=0)
        dominated[start:stop] = hit
    return dominated


def dominance_region(
    plan_a,
    plan_b,
    parameter_samples: Sequence,
    cost_function: CostFunction,
) -> list:
    """``Dom(p1, p2)`` (Eq. 2): samples of X where p1 dominates p2."""
    return [
        x
        for x in parameter_samples
        if dominates(cost_function(plan_a, x), cost_function(plan_b, x))
    ]


def strict_dominance_region(
    plan_a,
    plan_b,
    parameter_samples: Sequence,
    cost_function: CostFunction,
) -> list:
    """``StriDom(p1, p2)`` (Eq. 3): samples where p1 strictly dominates p2."""
    return [
        x
        for x in parameter_samples
        if strictly_dominates(cost_function(plan_a, x), cost_function(plan_b, x))
    ]


def pareto_region(
    plan,
    alternatives: Sequence,
    parameter_samples: Sequence,
    cost_function: CostFunction,
) -> list:
    """``PaReg(p)`` (Eq. 4): X minus every StriDom(p*, p).

    The samples where *no* alternative plan strictly beats ``plan`` on
    every metric.
    """
    region = []
    for x in parameter_samples:
        own = cost_function(plan, x)
        beaten = any(
            strictly_dominates(cost_function(alternative, x), own)
            for alternative in alternatives
            if alternative is not plan
        )
        if not beaten:
            region.append(x)
    return region
