"""Plan dominance and Pareto regions (paper §2.3, Eq. 1-4).

Two granularities:

* **vector dominance** — compare two cost vectors (all metrics <=, resp. <);
* **parametric dominance** — the paper's ``Dom``/``StriDom``/``PaReg``
  operate over a *parameter space* X: plan costs are functions
  ``c_n(p, x)`` and the region where one plan dominates another is a
  subset of X.  We evaluate the regions over a caller-supplied sample of
  parameter vectors, which is exactly how a region would be used
  downstream (measure-theoretic exactness is not needed by the system).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.common.errors import ValidationError

CostFunction = Callable[[object, object], Sequence[float]]
# signature: (plan, parameter_vector) -> cost vector


def _check(a: Sequence[float], b: Sequence[float]) -> None:
    if len(a) != len(b):
        raise ValidationError(f"cost vectors differ in length: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValidationError("cost vectors must be non-empty")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Eq. 1: every component of ``a`` <= the matching component of ``b``."""
    _check(a, b)
    return all(x <= y for x, y in zip(a, b))


def strictly_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Eq. 3: every component strictly smaller."""
    _check(a, b)
    return all(x < y for x, y in zip(a, b))


def pareto_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Standard Pareto dominance: <= everywhere and < somewhere."""
    _check(a, b)
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def dominance_region(
    plan_a,
    plan_b,
    parameter_samples: Sequence,
    cost_function: CostFunction,
) -> list:
    """``Dom(p1, p2)`` (Eq. 2): samples of X where p1 dominates p2."""
    return [
        x
        for x in parameter_samples
        if dominates(cost_function(plan_a, x), cost_function(plan_b, x))
    ]


def strict_dominance_region(
    plan_a,
    plan_b,
    parameter_samples: Sequence,
    cost_function: CostFunction,
) -> list:
    """``StriDom(p1, p2)`` (Eq. 3): samples where p1 strictly dominates p2."""
    return [
        x
        for x in parameter_samples
        if strictly_dominates(cost_function(plan_a, x), cost_function(plan_b, x))
    ]


def pareto_region(
    plan,
    alternatives: Sequence,
    parameter_samples: Sequence,
    cost_function: CostFunction,
) -> list:
    """``PaReg(p)`` (Eq. 4): X minus every StriDom(p*, p).

    The samples where *no* alternative plan strictly beats ``plan`` on
    every metric.
    """
    region = []
    for x in parameter_samples:
        own = cost_function(plan, x)
        beaten = any(
            strictly_dominates(cost_function(alternative, x), own)
            for alternative in alternatives
            if alternative is not plan
        )
        if not beaten:
            region.append(x)
    return region
