"""NSGA-G: grid-based non-dominated sorting genetic algorithm.

The authors' companion algorithm (Le, Kantere, d'Orazio, BPOD@BigData
2018 — reference [22] of the paper): NSGA with the diversity-preserving
step replaced by a **grid partition** of objective space.  When the last
front overflows the population budget, survivors are drawn one-per-cell
from the least-crowded grid cells instead of by crowding distance, which
is cheaper (no per-axis sorts) and spreads selection pressure evenly.

Like NSGA-II, the hot pieces are numpy-native: populations evaluate
through one batched prediction per generation, the non-dominated sort is
the vectorized kernel from :mod:`repro.moqp.nsga2`, ranks are computed
once per population and reused by the next tournament, and grid cells
for a whole front come from one broadcast (:func:`grid_cells`) instead
of a per-member Python loop.  Seeded runs match the scalar original
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import RngStream
from repro.moqp.nsga2 import fast_non_dominated_sort
from repro.moqp.problem import Candidate, EnumeratedProblem


@dataclass(frozen=True)
class NsgaGConfig:
    population_size: int = 40
    generations: int = 30
    crossover_probability: float = 0.9
    mutation_probability: float = 0.15
    grid_divisions: int = 8
    seed: int = 23


def grid_cell(
    objectives: tuple[float, ...],
    lows: list[float],
    highs: list[float],
    divisions: int,
) -> tuple[int, ...]:
    """The grid cell of one objective vector under a min-max partition."""
    cell = []
    for axis, value in enumerate(objectives):
        span = highs[axis] - lows[axis]
        if span <= 0:
            cell.append(0)
            continue
        position = (value - lows[axis]) / span
        cell.append(min(divisions - 1, int(position * divisions)))
    return tuple(cell)


def grid_cells(
    points: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    divisions: int,
) -> np.ndarray:
    """Vectorised :func:`grid_cell` for a whole front: an (n, d) int grid.

    Identical arithmetic per element on finite values (normalise, scale,
    truncate, clamp), with degenerate axes (span <= 0) collapsing to
    cell 0.  Non-finite objectives — where the scalar :func:`grid_cell`
    raises on the float -> int conversion — are clamped
    deterministically instead: ``+inf`` lands in the top cell, ``-inf``
    in cell 0 (an ``inf`` prediction is simply the worst member of its
    axis, not a reason to abort selection).
    """
    points = np.asarray(points, dtype=float)
    lows = np.asarray(lows, dtype=float)
    spans = np.asarray(highs, dtype=float) - lows
    live = spans > 0
    cells = np.zeros(points.shape, dtype=np.int64)
    if live.any():
        values = points[:, live]
        with np.errstate(invalid="ignore"):
            scaled = (values - lows[live]) / spans[live] * divisions
        # NaN arises only from inf arithmetic (inf - inf, inf / inf);
        # resolve it by the sign of the offending objective value.
        scaled = np.where(
            np.isnan(scaled),
            np.where(np.isposinf(values), float(divisions - 1), 0.0),
            scaled,
        )
        cells[:, live] = np.clip(scaled, 0.0, float(divisions - 1)).astype(np.int64)
    return cells


class NsgaG:
    """Grid-selection NSGA over an :class:`EnumeratedProblem`."""

    def __init__(self, config: NsgaGConfig | None = None):
        self.config = config or NsgaGConfig()

    def optimise(self, problem: EnumeratedProblem) -> list[Candidate]:
        config = self.config
        rng = RngStream(config.seed, "nsga-g")
        population_size = min(config.population_size, problem.size)
        population = list(
            int(i) for i in rng.choice(problem.size, size=population_size, replace=False)
        )
        problem.objectives_matrix(population)
        rank = self._ranks([problem.objectives(i) for i in population])
        for _generation in range(config.generations):
            offspring = self._make_offspring(population, rank, problem, rng)
            problem.objectives_matrix(offspring)  # one batch per generation
            population = self._grid_selection(
                population + offspring, problem, population_size, rng
            )
            rank = self._ranks([problem.objectives(i) for i in population])
        first = [position for position, r in rank.items() if r == 0]
        unique: dict[int, Candidate] = {}
        for position in sorted(first):
            unique[population[position]] = problem.evaluated(population[position])
        return list(unique.values())

    # ------------------------------------------------------------------

    @staticmethod
    def _ranks(objectives: list[tuple[float, ...]]) -> dict[int, int]:
        """Front rank per position — once per population, reused by the
        next generation's tournament and the final front cut."""
        rank: dict[int, int] = {}
        for front_rank, front in enumerate(fast_non_dominated_sort(objectives)):
            for member in front:
                rank[member] = front_rank
        return rank

    def _make_offspring(
        self,
        population: list[int],
        rank: dict[int, int],
        problem: EnumeratedProblem,
        rng: RngStream,
    ) -> list[int]:
        config = self.config

        def tournament() -> int:
            a, b = (int(x) for x in rng.integers(0, len(population), size=2))
            return population[a] if rank[a] <= rank[b] else population[b]

        offspring: list[int] = []
        while len(offspring) < len(population):
            parent_a, parent_b = tournament(), tournament()
            if rng.random() < config.crossover_probability:
                low, high = sorted((parent_a, parent_b))
                child = int(rng.integers(low, high + 1))
            else:
                child = parent_a
            if rng.random() < config.mutation_probability:
                child = int(rng.integers(0, problem.size))
            offspring.append(child)
        return offspring

    def _grid_selection(
        self,
        merged: list[int],
        problem: EnumeratedProblem,
        population_size: int,
        rng: RngStream,
    ) -> list[int]:
        # Every member was already batch-evaluated this generation, so
        # these lookups are pure cache hits.
        merged = list(dict.fromkeys(merged))
        objectives = [problem.objectives(i) for i in merged]
        fronts = fast_non_dominated_sort(objectives)
        selected: list[int] = []
        for front in fronts:
            if len(selected) + len(front) <= population_size:
                selected.extend(front)
                continue
            needed = population_size - len(selected)
            selected.extend(self._pick_from_grid(front, objectives, needed, rng))
            break
        return [merged[i] for i in selected]

    def _pick_from_grid(
        self,
        front: list[int],
        objectives: list[tuple[float, ...]],
        needed: int,
        rng: RngStream,
    ) -> list[int]:
        """Survivors drawn round-robin from the least-crowded grid cells."""
        points = np.array([objectives[i] for i in front], dtype=float)
        lows = points.min(axis=0)
        highs = points.max(axis=0)
        keys = grid_cells(points, lows, highs, self.config.grid_divisions)
        cells: dict[tuple[int, ...], list[int]] = {}
        for member, key in zip(front, map(tuple, keys.tolist())):
            cells.setdefault(key, []).append(member)
        for members in cells.values():
            rng.shuffle(members)
        picked: list[int] = []
        # Round-robin over cells ordered by occupancy (sparse first).
        ordered_cells = sorted(cells.values(), key=len)
        while len(picked) < needed:
            progressed = False
            for members in ordered_cells:
                if members:
                    picked.append(members.pop())
                    progressed = True
                    if len(picked) == needed:
                        break
            if not progressed:
                break
        return picked
