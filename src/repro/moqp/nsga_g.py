"""NSGA-G: grid-based non-dominated sorting genetic algorithm.

The authors' companion algorithm (Le, Kantere, d'Orazio, BPOD@BigData
2018 — reference [22] of the paper): NSGA with the diversity-preserving
step replaced by a **grid partition** of objective space.  When the last
front overflows the population budget, survivors are drawn one-per-cell
from the least-crowded grid cells instead of by crowding distance, which
is cheaper (no per-axis sorts) and spreads selection pressure evenly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.rng import RngStream
from repro.moqp.nsga2 import fast_non_dominated_sort
from repro.moqp.problem import Candidate, EnumeratedProblem


@dataclass(frozen=True)
class NsgaGConfig:
    population_size: int = 40
    generations: int = 30
    crossover_probability: float = 0.9
    mutation_probability: float = 0.15
    grid_divisions: int = 8
    seed: int = 23


def grid_cell(
    objectives: tuple[float, ...],
    lows: list[float],
    highs: list[float],
    divisions: int,
) -> tuple[int, ...]:
    """The grid cell of one objective vector under a min-max partition."""
    cell = []
    for axis, value in enumerate(objectives):
        span = highs[axis] - lows[axis]
        if span <= 0:
            cell.append(0)
            continue
        position = (value - lows[axis]) / span
        cell.append(min(divisions - 1, int(position * divisions)))
    return tuple(cell)


class NsgaG:
    """Grid-selection NSGA over an :class:`EnumeratedProblem`."""

    def __init__(self, config: NsgaGConfig | None = None):
        self.config = config or NsgaGConfig()

    def optimise(self, problem: EnumeratedProblem) -> list[Candidate]:
        config = self.config
        rng = RngStream(config.seed, "nsga-g")
        population_size = min(config.population_size, problem.size)
        population = list(
            int(i) for i in rng.choice(problem.size, size=population_size, replace=False)
        )
        for _generation in range(config.generations):
            offspring = self._make_offspring(population, problem, rng)
            population = self._grid_selection(
                population + offspring, problem, population_size, rng
            )
        objectives = [problem.objectives(i) for i in population]
        first = fast_non_dominated_sort(objectives)[0]
        unique: dict[int, Candidate] = {}
        for position in first:
            unique[population[position]] = problem.evaluated(population[position])
        return list(unique.values())

    # ------------------------------------------------------------------

    def _make_offspring(
        self, population: list[int], problem: EnumeratedProblem, rng: RngStream
    ) -> list[int]:
        config = self.config
        objectives = [problem.objectives(i) for i in population]
        fronts = fast_non_dominated_sort(objectives)
        rank = {}
        for front_rank, front in enumerate(fronts):
            for member in front:
                rank[member] = front_rank

        def tournament() -> int:
            a, b = (int(x) for x in rng.integers(0, len(population), size=2))
            return population[a] if rank[a] <= rank[b] else population[b]

        offspring: list[int] = []
        while len(offspring) < len(population):
            parent_a, parent_b = tournament(), tournament()
            if rng.random() < config.crossover_probability:
                low, high = sorted((parent_a, parent_b))
                child = int(rng.integers(low, high + 1))
            else:
                child = parent_a
            if rng.random() < config.mutation_probability:
                child = int(rng.integers(0, problem.size))
            offspring.append(child)
        return offspring

    def _grid_selection(
        self,
        merged: list[int],
        problem: EnumeratedProblem,
        population_size: int,
        rng: RngStream,
    ) -> list[int]:
        merged = list(dict.fromkeys(merged))
        objectives = [problem.objectives(i) for i in merged]
        fronts = fast_non_dominated_sort(objectives)
        selected: list[int] = []
        for front in fronts:
            if len(selected) + len(front) <= population_size:
                selected.extend(front)
                continue
            needed = population_size - len(selected)
            selected.extend(self._pick_from_grid(front, objectives, needed, rng))
            break
        return [merged[i] for i in selected]

    def _pick_from_grid(
        self,
        front: list[int],
        objectives: list[tuple[float, ...]],
        needed: int,
        rng: RngStream,
    ) -> list[int]:
        """Survivors drawn round-robin from the least-crowded grid cells."""
        dimension = len(objectives[front[0]])
        lows = [min(objectives[i][axis] for i in front) for axis in range(dimension)]
        highs = [max(objectives[i][axis] for i in front) for axis in range(dimension)]
        cells: dict[tuple[int, ...], list[int]] = {}
        for member in front:
            key = grid_cell(objectives[member], lows, highs, self.config.grid_divisions)
            cells.setdefault(key, []).append(member)
        for members in cells.values():
            rng.shuffle(members)
        picked: list[int] = []
        # Round-robin over cells ordered by occupancy (sparse first).
        ordered_cells = sorted(cells.values(), key=len)
        while len(picked) < needed:
            progressed = False
            for members in ordered_cells:
                if members:
                    picked.append(members.pop())
                    progressed = True
                    if len(picked) == needed:
                        break
            if not progressed:
                break
        return picked
