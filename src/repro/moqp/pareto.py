"""Pareto fronts and quality indicators."""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ValidationError
from repro.moqp.dominance import pareto_dominates


def pareto_front_indices(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated points (minimisation, duplicates kept).

    O(n^2) pairwise scan — candidate sets in the optimizer are at most a
    few thousand QEPs, where this is faster than fancier approaches.
    """
    front: list[int] = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i != j and pareto_dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def pareto_front(points: Sequence[Sequence[float]]) -> list[Sequence[float]]:
    """The non-dominated subset of ``points``."""
    return [points[i] for i in pareto_front_indices(points)]


def hypervolume_2d(
    points: Sequence[Sequence[float]], reference: Sequence[float]
) -> float:
    """Exact hypervolume for two objectives (minimisation).

    The area dominated by the front and bounded by ``reference``.  Points
    outside the reference box contribute nothing.
    """
    if len(reference) != 2:
        raise ValidationError("hypervolume_2d needs a 2-D reference point")
    front = [
        p
        for p in pareto_front(points)
        if p[0] < reference[0] and p[1] < reference[1]
    ]
    if not front:
        return 0.0
    ordered = sorted(set((p[0], p[1]) for p in front))
    volume = 0.0
    previous_y = reference[1]
    for x, y in ordered:
        if y < previous_y:
            volume += (reference[0] - x) * (previous_y - y)
            previous_y = y
    return volume


def spread_2d(points: Sequence[Sequence[float]]) -> float:
    """Extent of a 2-D front: the perimeter of its bounding box."""
    if not points:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
