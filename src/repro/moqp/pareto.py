"""Pareto fronts and quality indicators.

The front computation is numpy-native: a lexicographic-sort-assisted
sweep over blockwise dominance broadcasts (see
:func:`pareto_front_indices`).  The original pure-Python pairwise scan
is retained as :func:`pareto_front_indices_py` — it is the equivalence
oracle the property suite checks the vectorized path against, point for
point, including duplicates, exact per-axis ties, and ``inf``
objectives.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.moqp.dominance import (
    DEFAULT_BLOCK_SIZE,
    objective_matrix,
    pareto_dominance_matrix,
    pareto_dominates,
)


def pareto_front_indices_py(points: Sequence[Sequence[float]]) -> list[int]:
    """Pure-Python O(n²) pairwise scan (the scalar equivalence oracle).

    Kept verbatim from the original implementation: the vectorized
    :func:`pareto_front_indices` must return exactly this, and the
    property suite asserts it does.
    """
    front: list[int] = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i != j and pareto_dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def pareto_front_indices(
    points: Sequence[Sequence[float]], block_size: int = DEFAULT_BLOCK_SIZE
) -> list[int]:
    """Indices of the non-dominated points (minimisation, duplicates kept).

    Sort-assisted and memory-bounded: points are processed in
    lexicographic order (a pareto-dominator always precedes its victim
    there), in blocks of ``block_size``.  Each block is screened against
    the survivors found so far, then intra-block dominance is resolved
    with one small broadcast — peak scratch memory is
    ``O(block_size² · d)`` regardless of n, and tens of thousands of
    points (Example 3.1's 18,200 equivalent QEPs) resolve in
    milliseconds where the pairwise scan needs seconds.

    Returns ascending original indices, exactly matching
    :func:`pareto_front_indices_py`.
    """
    matrix = objective_matrix(points)
    count = matrix.shape[0]
    if count == 0:
        return []
    if count == 1:
        return [0]
    # Lexicographic order, first objective most significant: if q
    # pareto-dominates p then q precedes p here (componentwise <= with a
    # strict axis sorts strictly earlier), so a single forward sweep
    # sees every potential dominator before its victim.  Transitivity
    # lets the sweep compare against *surviving* points only.
    order = np.lexsort(matrix.T[::-1])
    survivor_rows: list[np.ndarray] = []
    survivor_indices: list[np.ndarray] = []
    for start in range(0, count, block_size):
        block_order = order[start : start + block_size]
        block = matrix[block_order]
        alive = np.ones(block.shape[0], dtype=bool)
        for rows in survivor_rows:
            if not alive.any():
                break
            alive[alive] &= ~pareto_dominance_matrix(rows, block[alive]).any(axis=0)
        kept = block[alive]
        if kept.shape[0]:
            # Intra-block pass: earlier-in-lex-order points are the only
            # possible dominators, but checking all pairs is equivalent
            # (a lex-later point never dominates) and needs no masking.
            internal = pareto_dominance_matrix(kept, kept).any(axis=0)
            kept = kept[~internal]
            survivor_rows.append(kept)
            survivor_indices.append(block_order[alive][~internal])
    merged = np.concatenate(survivor_indices)
    merged.sort()
    return [int(i) for i in merged]


def pareto_front(points: Sequence[Sequence[float]]) -> list[Sequence[float]]:
    """The non-dominated subset of ``points``."""
    return [points[i] for i in pareto_front_indices(points)]


def hypervolume_2d(
    points: Sequence[Sequence[float]], reference: Sequence[float]
) -> float:
    """Exact hypervolume for two objectives (minimisation).

    The area dominated by the front and bounded by ``reference``.  Points
    outside the reference box contribute nothing.
    """
    if len(reference) != 2:
        raise ValidationError("hypervolume_2d needs a 2-D reference point")
    front = [
        p
        for p in pareto_front(points)
        if p[0] < reference[0] and p[1] < reference[1]
    ]
    if not front:
        return 0.0
    ordered = sorted(set((p[0], p[1]) for p in front))
    volume = 0.0
    previous_y = reference[1]
    for x, y in ordered:
        if y < previous_y:
            volume += (reference[0] - x) * (previous_y - y)
            previous_y = y
    return volume


def spread_2d(points: Sequence[Sequence[float]]) -> float:
    """Extent of a 2-D front: the perimeter of its bounding box."""
    if not points:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
