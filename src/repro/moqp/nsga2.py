"""NSGA-II (Deb et al. 2002) over enumerated decision spaces.

Implements the canonical pieces — fast non-dominated sort, crowding
distance, binary tournament on (rank, crowding) — with variation
operators suited to an index-encoded discrete space: candidates are
integers, crossover blends indices, mutation jumps to a random index.
This matches how the paper's Multi-Objective Optimizer explores the
QEP/configuration space of Example 3.1 (where exhaustive evaluation of
18,200 configurations per query is exactly what one wants to avoid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import RngStream
from repro.moqp.dominance import pareto_dominates
from repro.moqp.problem import Candidate, EnumeratedProblem


@dataclass(frozen=True)
class Nsga2Config:
    population_size: int = 40
    generations: int = 30
    crossover_probability: float = 0.9
    mutation_probability: float = 0.15
    seed: int = 17


def fast_non_dominated_sort(objectives: list[tuple[float, ...]]) -> list[list[int]]:
    """Deb's fast non-dominated sort: list of fronts (indices), best first."""
    count = len(objectives)
    dominated_by: list[list[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts: list[list[int]] = [[]]
    for p in range(count):
        for q in range(count):
            if p == q:
                continue
            if pareto_dominates(objectives[p], objectives[q]):
                dominated_by[p].append(q)
            elif pareto_dominates(objectives[q], objectives[p]):
                domination_count[p] += 1
        if domination_count[p] == 0:
            fronts[0].append(p)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for p in fronts[current]:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # trailing empty front
    return fronts


def crowding_distance(objectives: list[tuple[float, ...]], front: list[int]) -> dict[int, float]:
    """Crowding distance of each member of one front."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    dimension = len(objectives[front[0]])
    for axis in range(dimension):
        ordered = sorted(front, key=lambda i: objectives[i][axis])
        low = objectives[ordered[0]][axis]
        high = objectives[ordered[-1]][axis]
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        if high == low:
            continue
        for position in range(1, len(ordered) - 1):
            gap = (
                objectives[ordered[position + 1]][axis]
                - objectives[ordered[position - 1]][axis]
            )
            distance[ordered[position]] += gap / (high - low)
    return distance


class Nsga2:
    """NSGA-II over an :class:`EnumeratedProblem` (index encoding)."""

    def __init__(self, config: Nsga2Config | None = None):
        self.config = config or Nsga2Config()

    def optimise(self, problem: EnumeratedProblem) -> list[Candidate]:
        """Return the final population's first front (deduplicated)."""
        config = self.config
        rng = RngStream(config.seed, "nsga2")
        population_size = min(config.population_size, problem.size)

        population = list(
            int(i) for i in rng.choice(problem.size, size=population_size, replace=False)
        )
        for _generation in range(config.generations):
            offspring = self._make_offspring(population, problem, rng)
            population = self._environmental_selection(
                population + offspring, problem, population_size
            )

        objectives = [problem.objectives(i) for i in population]
        first_front = fast_non_dominated_sort(objectives)[0]
        unique: dict[int, Candidate] = {}
        for position in first_front:
            index = population[position]
            unique[index] = problem.evaluated(index)
        return list(unique.values())

    # ------------------------------------------------------------------

    def _make_offspring(
        self, population: list[int], problem: EnumeratedProblem, rng: RngStream
    ) -> list[int]:
        config = self.config
        objectives = [problem.objectives(i) for i in population]
        fronts = fast_non_dominated_sort(objectives)
        rank = {}
        crowding: dict[int, float] = {}
        for front_rank, front in enumerate(fronts):
            distances = crowding_distance(objectives, front)
            for member in front:
                rank[member] = front_rank
                crowding[member] = distances[member]

        def tournament() -> int:
            a, b = rng.integers(0, len(population), size=2)
            a, b = int(a), int(b)
            if rank[a] != rank[b]:
                return population[a] if rank[a] < rank[b] else population[b]
            return population[a] if crowding[a] >= crowding[b] else population[b]

        offspring: list[int] = []
        while len(offspring) < len(population):
            parent_a = tournament()
            parent_b = tournament()
            if rng.random() < config.crossover_probability:
                child = self._crossover(parent_a, parent_b, rng)
            else:
                child = parent_a
            if rng.random() < config.mutation_probability:
                child = int(rng.integers(0, problem.size))
            offspring.append(child)
        return offspring

    @staticmethod
    def _crossover(parent_a: int, parent_b: int, rng: RngStream) -> int:
        """Blend crossover on the index line (discrete arithmetic mix)."""
        low, high = sorted((parent_a, parent_b))
        return int(rng.integers(low, high + 1))

    @staticmethod
    def _environmental_selection(
        merged: list[int], problem: EnumeratedProblem, population_size: int
    ) -> list[int]:
        # Deduplicate candidate indices to keep diversity in a discrete space.
        merged = list(dict.fromkeys(merged))
        objectives = [problem.objectives(i) for i in merged]
        fronts = fast_non_dominated_sort(objectives)
        selected: list[int] = []
        for front in fronts:
            if len(selected) + len(front) <= population_size:
                selected.extend(front)
                continue
            distances = crowding_distance(objectives, front)
            remaining = sorted(front, key=lambda i: distances[i], reverse=True)
            selected.extend(remaining[: population_size - len(selected)])
            break
        return [merged[i] for i in selected]
