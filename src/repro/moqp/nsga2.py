"""NSGA-II (Deb et al. 2002) over enumerated decision spaces.

Implements the canonical pieces — fast non-dominated sort, crowding
distance, binary tournament on (rank, crowding) — with variation
operators suited to an index-encoded discrete space: candidates are
integers, crossover blends indices, mutation jumps to a random index.
This matches how the paper's Multi-Objective Optimizer explores the
QEP/configuration space of Example 3.1 (where exhaustive evaluation of
18,200 configurations per query is exactly what one wants to avoid).

The sort and the crowding computation are numpy-native: the sort peels
fronts off a dominance-count matrix (one broadcast kernel, no Python
pair loop) and crowding is one stable argsort per axis.  Both reproduce
the original scalar implementations *exactly* — including the order in
which members enter a front and bitwise-identical crowding values — so
seeded runs are unchanged; the scalar versions are retained as
:func:`fast_non_dominated_sort_py` / :func:`crowding_distance_py` and
property-tested against the vectorized ones.  Populations are evaluated
through :meth:`~repro.moqp.problem.EnumeratedProblem.objectives_matrix`,
one batched model prediction per generation, and each population's
(rank, crowding) is computed once and reused by the next tournament and
the final front extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import RngStream
from repro.moqp.dominance import (
    DEFAULT_BLOCK_SIZE,
    objective_matrix,
    pareto_dominance_matrix,
    pareto_dominates,
)
from repro.moqp.problem import Candidate, EnumeratedProblem


@dataclass(frozen=True)
class Nsga2Config:
    population_size: int = 40
    generations: int = 30
    crossover_probability: float = 0.9
    mutation_probability: float = 0.15
    seed: int = 17


def fast_non_dominated_sort_py(
    objectives: list[tuple[float, ...]]
) -> list[list[int]]:
    """Deb's sort, scalar reference (the pre-vectorization original)."""
    count = len(objectives)
    dominated_by: list[list[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts: list[list[int]] = [[]]
    for p in range(count):
        for q in range(count):
            if p == q:
                continue
            if pareto_dominates(objectives[p], objectives[q]):
                dominated_by[p].append(q)
            elif pareto_dominates(objectives[q], objectives[p]):
                domination_count[p] += 1
        if domination_count[p] == 0:
            fronts[0].append(p)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for p in fronts[current]:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # trailing empty front
    return fronts


def _dominance_matrix(
    matrix: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> np.ndarray:
    """Full (n, n) ``D[i, j] = i pareto-dominates j``, built blockwise."""
    count = matrix.shape[0]
    dominates = np.empty((count, count), dtype=bool)
    for start in range(0, count, block_size):
        stop = min(start + block_size, count)
        dominates[start:stop] = pareto_dominance_matrix(matrix[start:stop], matrix)
    return dominates


def fast_non_dominated_sort(objectives: list[tuple[float, ...]]) -> list[list[int]]:
    """Deb's fast non-dominated sort: list of fronts (indices), best first.

    Vectorized peeling over a dominance-count matrix; within every front
    the member order replicates the scalar algorithm exactly (a point is
    appended when its *last* current-front dominator is processed, ties
    in index order), so downstream consumers that are order-sensitive —
    environmental selection, crowding ties — behave identically.
    Intended for population-scale inputs (it materialises an (n, n)
    matrix); exact fronts of huge spaces use
    :func:`~repro.moqp.pareto.pareto_front_indices` instead.
    """
    matrix = objective_matrix(objectives)
    count = matrix.shape[0]
    if count == 0:
        return []
    dominates = _dominance_matrix(matrix)
    counts = dominates.sum(axis=0).astype(np.int64)
    assigned = np.zeros(count, dtype=bool)
    front = np.flatnonzero(counts == 0)
    fronts: list[list[int]] = []
    while front.size:
        fronts.append([int(i) for i in front])
        assigned[front] = True
        in_front = dominates[front]  # (f, n)
        counts -= in_front.sum(axis=0)
        newly = np.flatnonzero(~assigned & (counts == 0))
        if newly.size:
            # Scalar append order: q enters when the last of its
            # dominators inside the current front is processed; equal
            # positions resolve in index order.
            columns = in_front[:, newly]
            last_dominator = (columns.shape[0] - 1) - np.argmax(
                columns[::-1], axis=0
            )
            newly = newly[np.lexsort((newly, last_dominator))]
        front = newly
    return fronts


def crowding_distance_py(
    objectives: list[tuple[float, ...]], front: list[int]
) -> dict[int, float]:
    """Crowding distance, scalar reference (the pre-vectorization original)."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    dimension = len(objectives[front[0]])
    for axis in range(dimension):
        ordered = sorted(front, key=lambda i: objectives[i][axis])
        low = objectives[ordered[0]][axis]
        high = objectives[ordered[-1]][axis]
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        if high == low:
            continue
        for position in range(1, len(ordered) - 1):
            gap = (
                objectives[ordered[position + 1]][axis]
                - objectives[ordered[position - 1]][axis]
            )
            distance[ordered[position]] += gap / (high - low)
    return distance


def crowding_distance(
    objectives: list[tuple[float, ...]], front: list[int]
) -> dict[int, float]:
    """Crowding distance of each member of one front.

    One stable argsort per axis; arithmetic and tie handling match
    :func:`crowding_distance_py` operation for operation, so the values
    (and therefore tournament and truncation outcomes) are bitwise
    identical.
    """
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    points = np.array([objectives[i] for i in front], dtype=float)
    size, dimension = points.shape
    distance = np.zeros(size)
    for axis in range(dimension):
        order = np.argsort(points[:, axis], kind="stable")
        low = points[order[0], axis]
        high = points[order[-1], axis]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if high == low:
            continue
        # inf neighbours yield the same inf/nan values the scalar loop
        # produces; only the numpy warning is suppressed.
        with np.errstate(invalid="ignore"):
            gaps = points[order[2:], axis] - points[order[:-2], axis]
            distance[order[1:-1]] += gaps / (high - low)
    return {member: float(distance[k]) for k, member in enumerate(front)}


def rank_and_crowding(
    objectives: list[tuple[float, ...]],
) -> tuple[dict[int, int], dict[int, float]]:
    """(rank, crowding) per position — one sort per population, reused by
    the tournament of the next generation and the final front cut."""
    rank: dict[int, int] = {}
    crowding: dict[int, float] = {}
    for front_rank, front in enumerate(fast_non_dominated_sort(objectives)):
        distances = crowding_distance(objectives, front)
        for member in front:
            rank[member] = front_rank
            crowding[member] = distances[member]
    return rank, crowding


class Nsga2:
    """NSGA-II over an :class:`EnumeratedProblem` (index encoding)."""

    def __init__(self, config: Nsga2Config | None = None):
        self.config = config or Nsga2Config()

    def optimise(self, problem: EnumeratedProblem) -> list[Candidate]:
        """Return the final population's first front (deduplicated)."""
        config = self.config
        rng = RngStream(config.seed, "nsga2")
        population_size = min(config.population_size, problem.size)

        population = list(
            int(i) for i in rng.choice(problem.size, size=population_size, replace=False)
        )
        # One batched evaluation per population/offspring set; the
        # per-population (rank, crowding) is computed once here and
        # reused by the tournament, instead of being recomputed inside
        # _make_offspring every generation.
        problem.objectives_matrix(population)
        rank, crowding = rank_and_crowding(
            [problem.objectives(i) for i in population]
        )
        for _generation in range(config.generations):
            offspring = self._make_offspring(population, rank, crowding, problem, rng)
            problem.objectives_matrix(offspring)  # one batch per generation
            population = self._environmental_selection(
                population + offspring, problem, population_size
            )
            rank, crowding = rank_and_crowding(
                [problem.objectives(i) for i in population]
            )

        first_front = [position for position, r in rank.items() if r == 0]
        unique: dict[int, Candidate] = {}
        for position in sorted(first_front):
            index = population[position]
            unique[index] = problem.evaluated(index)
        return list(unique.values())

    # ------------------------------------------------------------------

    def _make_offspring(
        self,
        population: list[int],
        rank: dict[int, int],
        crowding: dict[int, float],
        problem: EnumeratedProblem,
        rng: RngStream,
    ) -> list[int]:
        config = self.config

        def tournament() -> int:
            a, b = rng.integers(0, len(population), size=2)
            a, b = int(a), int(b)
            if rank[a] != rank[b]:
                return population[a] if rank[a] < rank[b] else population[b]
            return population[a] if crowding[a] >= crowding[b] else population[b]

        offspring: list[int] = []
        while len(offspring) < len(population):
            parent_a = tournament()
            parent_b = tournament()
            if rng.random() < config.crossover_probability:
                child = self._crossover(parent_a, parent_b, rng)
            else:
                child = parent_a
            if rng.random() < config.mutation_probability:
                child = int(rng.integers(0, problem.size))
            offspring.append(child)
        return offspring

    @staticmethod
    def _crossover(parent_a: int, parent_b: int, rng: RngStream) -> int:
        """Blend crossover on the index line (discrete arithmetic mix)."""
        low, high = sorted((parent_a, parent_b))
        return int(rng.integers(low, high + 1))

    @staticmethod
    def _environmental_selection(
        merged: list[int], problem: EnumeratedProblem, population_size: int
    ) -> list[int]:
        # Deduplicate candidate indices to keep diversity in a discrete
        # space.  Every member was already batch-evaluated this
        # generation (population at start/selection, offspring in the
        # loop), so these lookups are pure cache hits.
        merged = list(dict.fromkeys(merged))
        objectives = [problem.objectives(i) for i in merged]
        fronts = fast_non_dominated_sort(objectives)
        selected: list[int] = []
        for front in fronts:
            if len(selected) + len(front) <= population_size:
                selected.extend(front)
                continue
            distances = crowding_distance(objectives, front)
            remaining = sorted(front, key=lambda i: distances[i], reverse=True)
            selected.extend(remaining[: population_size - len(selected)])
            break
        return [merged[i] for i in selected]
