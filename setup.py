from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Dynamic Estimation for Medical Data Management "
        "in a Cloud Federation' (DARLI-AP @ EDBT/ICDT 2019) with a "
        "production-style federation gateway"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro = repro.__main__:main",
        ]
    },
)
