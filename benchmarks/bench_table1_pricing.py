"""Table 1 — example of instances pricing (verbatim catalog check)."""

from conftest import record_result

from repro.experiments import format_table1, run_table1


def test_table1_pricing(benchmark):
    result = benchmark(run_table1)
    record_result("table1_pricing", format_table1(result))
    assert result.matches_paper, "catalog deviates from the paper's Table 1"
    assert len(result.rows) == 11
