"""Multi-tenant burst serving vs sequential seed-path fitting.

The MIDAS federation serves many hospitals' query templates at once: a
submission burst leaves *every* template's model stale and each template
must re-cost its own candidate set.  This benchmark replays that burst
loop over N independent drifting histories two ways:

* **seed path** — the repository's original serving behaviour: each
  template is fitted sequentially with the batch :class:`DreamEstimator`
  (full refit per window size, every call) and its candidate set is
  costed row by row in Python;
* **serving path** — :class:`~repro.serving.EstimationService`: stale
  templates are fitted concurrently on a thread pool (incremental
  engines from the shared :class:`~repro.core.cache.ModelCache`,
  rank-one PRESS), re-planning calls hit the per-version snapshot, and
  candidate sets are costed with one matmul per metric.

Both paths must choose identical windows and agree on every candidate
prediction to 1e-6, and the serving path must clear >= 2x burst
throughput at 16 templates.  The speedup comes from the incremental +
batched estimation machinery on any host; the thread pool additionally
overlaps fits on multicore hosts (NumPy releases the GIL inside the
matmul-heavy RLS path), which the report shows separately as the
parallel-vs-serial serving ratio.

Run standalone:  PYTHONPATH=src python benchmarks/bench_serving_burst.py [--quick]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from repro.cloud.variability import default_federation_load
from repro.common.rng import RngStream
from repro.core import DreamEstimator, ExecutionHistory
from repro.ires.modelling import DreamStrategy
from repro.serving import EstimationService

TEMPLATES = 16
R2_REQUIRED = 0.8
MAX_WINDOW = 20
FEATURES = ("size", "nodes")
METRICS = ("time", "money")
#: Optimizer costings per burst per template: the first follows a fresh
#: observation (stale -> refit), the second is a re-planning call on an
#: unchanged history (snapshot hit for the service, a full refit for the
#: seed path).
CALLS_PER_BURST = 2


@dataclass(frozen=True)
class BurstReport:
    templates: int
    bursts: int
    candidates_per_template: int
    seed_seconds: float
    serving_seconds: float
    serving_serial_seconds: float
    max_relative_difference: float
    windows_identical: bool
    snapshot_hits: int
    engine_cache_hits: int
    engine_cache_misses: int

    @property
    def speedup(self) -> float:
        return self.seed_seconds / self.serving_seconds

    @property
    def pool_ratio(self) -> float:
        """Parallel vs serial serving burst time (>1 means overlap won)."""
        return self.serving_serial_seconds / self.serving_seconds


def template_stream(key: str, ticks: int):
    """One tenant's drifting execution stream (paper drift scenario)."""
    rng = RngStream(61, "burst", key)
    load = default_federation_load(rng.child("load"))
    out = []
    for tick in range(ticks):
        size = float(rng.uniform(10, 100))
        nodes = float(rng.integers(2, 9))
        factor = load.factor(tick)
        duration = factor * (5 + 0.4 * size / nodes) * (1 + float(rng.normal(0, 0.03)))
        money = factor * (0.01 * size + 0.002 * nodes * duration)
        out.append(
            (tick, {"size": size, "nodes": nodes}, {"time": duration, "money": money})
        )
    return out


def run_serving_burst(quick: bool = False) -> BurstReport:
    warmup = 12 if quick else 24
    bursts = 8 if quick else 20
    candidate_count = 400 if quick else 1000

    keys = [f"template-{i:02d}" for i in range(TEMPLATES)]
    streams = {key: template_stream(key, warmup + bursts) for key in keys}
    matrices = {
        key: RngStream(71, "candidates", key).uniform(
            5.0, 120.0, size=(candidate_count, len(FEATURES))
        )
        for key in keys
    }

    # Seed path state: one replay history per template.
    seed_histories = {key: ExecutionHistory(FEATURES, METRICS) for key in keys}
    batch = DreamEstimator(r2_required=R2_REQUIRED, max_window=MAX_WINDOW)

    # Serving path state: two identical services, one refreshing on the
    # thread pool and one serially (to isolate the pool's contribution).
    service = EstimationService(
        strategy=DreamStrategy(r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    )
    serial_service = EstimationService(
        strategy=DreamStrategy(r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    )
    for key in keys:
        service.register(key, feature_names=FEATURES, metrics=METRICS)
        serial_service.register(key, feature_names=FEATURES, metrics=METRICS)

    def feed(key: str, tick: int, features, costs) -> None:
        seed_histories[key].append(tick, features, costs)
        service.record(key, tick, features, costs)
        serial_service.record(key, tick, features, costs)

    for key in keys:
        for tick, features, costs in streams[key][:warmup]:
            feed(key, tick, features, costs)

    seed_seconds = 0.0
    serving_seconds = 0.0
    serving_serial_seconds = 0.0
    max_diff = 0.0
    windows_identical = True

    for burst in range(bursts):
        for key in keys:
            tick, features, costs = streams[key][warmup + burst]
            feed(key, tick, features, costs)

        # Seed path: sequential batch refits + per-row Python costing.
        started = time.perf_counter()
        seed_predictions: dict[str, list[dict[str, float]]] = {}
        seed_windows: dict[str, int] = {}
        for _ in range(CALLS_PER_BURST):
            for key in keys:
                result = batch.fit(seed_histories[key].datasets())
                seed_windows[key] = result.window_size
                seed_predictions[key] = [result.predict(row) for row in matrices[key]]
        seed_seconds += time.perf_counter() - started

        # Serving path: one concurrent refresh, then batched costings.
        started = time.perf_counter()
        for _ in range(CALLS_PER_BURST):
            models = service.refresh(parallel=True)
            serving_columns = {
                key: service.estimate_batch(key, matrices[key]) for key in keys
            }
        serving_seconds += time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(CALLS_PER_BURST):
            serial_service.refresh(parallel=False)
            for key in keys:
                serial_service.estimate_batch(key, matrices[key])
        serving_serial_seconds += time.perf_counter() - started

        for key in keys:
            windows_identical &= models[key].training_size == seed_windows[key]
            for metric in METRICS:
                seed_column = np.array(
                    [row[metric] for row in seed_predictions[key]]
                )
                scale = np.maximum(np.abs(seed_column), 1e-9)
                max_diff = max(
                    max_diff,
                    float(
                        np.max(
                            np.abs(seed_column - serving_columns[key][metric]) / scale
                        )
                    ),
                )

    stats = service.stats
    return BurstReport(
        templates=TEMPLATES,
        bursts=bursts,
        candidates_per_template=candidate_count,
        seed_seconds=seed_seconds,
        serving_seconds=serving_seconds,
        serving_serial_seconds=serving_serial_seconds,
        max_relative_difference=max_diff,
        windows_identical=windows_identical,
        snapshot_hits=stats.snapshot_hits,
        engine_cache_hits=0 if stats.engine_cache is None else stats.engine_cache.hits,
        engine_cache_misses=(
            0 if stats.engine_cache is None else stats.engine_cache.misses
        ),
    )


def format_report(report: BurstReport) -> str:
    lines = [
        "Multi-tenant burst serving vs sequential seed-path fitting",
        "----------------------------------------------------------",
        f"templates x bursts x calls    : {report.templates} x {report.bursts} x {CALLS_PER_BURST}",
        f"candidates per template       : {report.candidates_per_template}",
        f"seed path (sequential batch)  : {report.seed_seconds * 1e3:8.1f} ms",
        f"serving (pool + incremental)  : {report.serving_seconds * 1e3:8.1f} ms",
        f"serving (serial refresh)      : {report.serving_serial_seconds * 1e3:8.1f} ms",
        f"burst speedup                 : {report.speedup:8.1f}x",
        f"pool vs serial serving        : {report.pool_ratio:8.2f}x",
        f"snapshot hits (re-planning)   : {report.snapshot_hits}",
        f"engine cache hits / misses    : {report.engine_cache_hits} / {report.engine_cache_misses}",
        f"max relative prediction diff  : {report.max_relative_difference:.2e}",
        f"windows identical             : {report.windows_identical}",
    ]
    return "\n".join(lines)


def check_report(report: BurstReport) -> None:
    import os

    assert report.templates == TEMPLATES, report.templates
    assert report.windows_identical
    assert report.max_relative_difference <= 1e-6
    assert report.speedup >= 2.0, f"burst speedup only {report.speedup:.1f}x"
    cores = os.cpu_count() or 1
    if cores < 2:
        # Flake guard: with one core the pool cannot overlap anything,
        # so the ratio only measures scheduler noise — report it, never
        # fail on it.
        print(
            f"[informational] single-core host ({cores} cpu): skipping the "
            f"pool-vs-serial floor (measured {report.pool_ratio:.2f}x)"
        )
        return
    # The pool must never cost more than a third of serial throughput
    # on a multicore host (its win shows as cores increase).
    assert report.pool_ratio >= 0.33, f"pool ratio {report.pool_ratio:.2f}"


def test_serving_burst_speedup(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(run_serving_burst, rounds=1, iterations=1)
    record_result("serving_burst", format_report(report))
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller burst stream for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_serving_burst(quick=arguments.quick)
    print(format_report(final))
    check_report(final)
