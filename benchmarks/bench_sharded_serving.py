"""Sharded cross-process serving vs the in-process thread-pool service.

The 16-template drift scenario of ``bench_serving_burst.py``, replayed
through both serving backends:

* **threaded** — :class:`~repro.serving.EstimationService`: burst
  refresh on a thread pool, fits GIL-bound in the parent process;
* **sharded** — :class:`~repro.serving.ShardedEstimationService`:
  templates hash-partitioned across worker processes, fits run in the
  workers (no GIL crosstalk), history rows streamed lazily over the
  pipe RPC, predictions served from parent-side snapshots.

Mid-run, one shard worker is **forcibly crashed** to exercise the
detection/respawn/replay path under load.

Correctness is the hard gate — identical window choices and a max
relative prediction difference <= 1e-9 vs the threaded service on every
burst, crash included (in practice the agreement is bitwise).  The
burst-throughput ratio is reported and persisted; it is asserted only
on multicore hosts, where cross-process fitting can actually win —
on a single core the RPC overhead makes the ratio informational
(printed and recorded, never a failure).

Results are emitted machine-readable to
``benchmarks/results/BENCH_sharded.json`` (a CI artifact, like
``BENCH_moqp.json``).

Run standalone:  PYTHONPATH=src python benchmarks/bench_sharded_serving.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path

import numpy as np

from repro.common.rng import RngStream
from repro.serving import EstimationService, ShardedEstimationService
from repro.serving.worker import dream_strategy

from bench_serving_burst import (
    CALLS_PER_BURST,
    FEATURES,
    MAX_WINDOW,
    METRICS,
    R2_REQUIRED,
    TEMPLATES,
    template_stream,
)

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_sharded.json"

SHARD_WORKERS = max(2, min(4, os.cpu_count() or 2))
#: Burst index at which one shard worker is forcibly killed.
CRASH_AT_BURST = 3


@dataclass(frozen=True)
class ShardedReport:
    templates: int
    bursts: int
    candidates_per_template: int
    shard_workers: int
    threaded_seconds: float
    sharded_seconds: float
    max_relative_difference: float
    windows_identical: bool
    respawns: int
    sharded_fits: int
    threaded_fits: int

    @property
    def throughput_ratio(self) -> float:
        """Threaded vs sharded burst time (>1 means sharding won)."""
        return self.threaded_seconds / self.sharded_seconds


def run_sharded_serving(quick: bool = False) -> ShardedReport:
    warmup = 12 if quick else 24
    bursts = 8 if quick else 20
    candidate_count = 400 if quick else 1000

    keys = [f"template-{i:02d}" for i in range(TEMPLATES)]
    streams = {key: template_stream(key, warmup + bursts) for key in keys}
    matrices = {
        key: RngStream(71, "candidates", key).uniform(
            5.0, 120.0, size=(candidate_count, len(FEATURES))
        )
        for key in keys
    }

    factory = partial(dream_strategy, r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    threaded = EstimationService(
        strategy=dream_strategy(r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    )
    sharded = ShardedEstimationService(factory, workers=SHARD_WORKERS)
    for key in keys:
        threaded.register(key, feature_names=FEATURES, metrics=METRICS)
        sharded.register(key, feature_names=FEATURES, metrics=METRICS)

    def feed(key: str, tick: int, features, costs) -> None:
        threaded.record(key, tick, features, costs)
        sharded.record(key, tick, features, costs)

    for key in keys:
        for tick, features, costs in streams[key][:warmup]:
            feed(key, tick, features, costs)

    threaded_seconds = 0.0
    sharded_seconds = 0.0
    max_diff = 0.0
    windows_identical = True
    crash_rng = RngStream(83, "crash")

    try:
        for burst in range(bursts):
            for key in keys:
                tick, features, costs = streams[key][warmup + burst]
                feed(key, tick, features, costs)

            if burst == CRASH_AT_BURST:
                victim = int(crash_rng.integers(0, sharded.workers))
                sharded.inject_worker_crash(victim)

            started = time.perf_counter()
            for _ in range(CALLS_PER_BURST):
                threaded_models = threaded.refresh(parallel=True)
                threaded_columns = {
                    key: threaded.estimate_batch(key, matrices[key]) for key in keys
                }
            threaded_seconds += time.perf_counter() - started

            started = time.perf_counter()
            for _ in range(CALLS_PER_BURST):
                sharded_models = sharded.refresh(parallel=True)
                sharded_columns = {
                    key: sharded.estimate_batch(key, matrices[key]) for key in keys
                }
            sharded_seconds += time.perf_counter() - started

            for key in keys:
                windows_identical &= (
                    sharded_models[key].training_size
                    == threaded_models[key].training_size
                )
                for metric in METRICS:
                    reference = threaded_columns[key][metric]
                    scale = np.maximum(np.abs(reference), 1e-9)
                    max_diff = max(
                        max_diff,
                        float(
                            np.max(
                                np.abs(reference - sharded_columns[key][metric])
                                / scale
                            )
                        ),
                    )

        return ShardedReport(
            templates=TEMPLATES,
            bursts=bursts,
            candidates_per_template=candidate_count,
            shard_workers=SHARD_WORKERS,
            threaded_seconds=threaded_seconds,
            sharded_seconds=sharded_seconds,
            max_relative_difference=max_diff,
            windows_identical=windows_identical,
            respawns=sharded.respawns,
            sharded_fits=sharded.stats.fits,
            threaded_fits=threaded.stats.fits,
        )
    finally:
        sharded.close()


def format_report(report: ShardedReport) -> str:
    lines = [
        "Sharded cross-process serving vs in-process thread-pool service",
        "---------------------------------------------------------------",
        f"templates x bursts x calls    : {report.templates} x {report.bursts} x {CALLS_PER_BURST}",
        f"candidates per template       : {report.candidates_per_template}",
        f"shard worker processes        : {report.shard_workers}",
        f"threaded (in-process pool)    : {report.threaded_seconds * 1e3:8.1f} ms",
        f"sharded (worker processes)    : {report.sharded_seconds * 1e3:8.1f} ms",
        f"sharded vs threaded           : {report.throughput_ratio:8.2f}x",
        f"forced crashes -> respawns    : 1 -> {report.respawns}",
        f"fits (sharded / threaded)     : {report.sharded_fits} / {report.threaded_fits}",
        f"max relative prediction diff  : {report.max_relative_difference:.2e}",
        f"windows identical             : {report.windows_identical}",
    ]
    return "\n".join(lines)


def write_json(report: ShardedReport) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "sharded_serving",
        "templates": report.templates,
        "bursts": report.bursts,
        "calls_per_burst": CALLS_PER_BURST,
        "candidates_per_template": report.candidates_per_template,
        "shard_workers": report.shard_workers,
        "host_cpu_count": os.cpu_count(),
        "threaded_ms": round(report.threaded_seconds * 1e3, 3),
        "sharded_ms": round(report.sharded_seconds * 1e3, 3),
        "throughput_ratio": round(report.throughput_ratio, 3),
        "respawns": report.respawns,
        "sharded_fits": report.sharded_fits,
        "threaded_fits": report.threaded_fits,
        "max_relative_difference": report.max_relative_difference,
        "windows_identical": report.windows_identical,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def check_report(report: ShardedReport) -> None:
    assert report.templates == TEMPLATES, report.templates
    assert report.windows_identical
    # The tentpole acceptance bar: oracle equivalence through a forced
    # worker crash and respawn.
    assert report.max_relative_difference <= 1e-9, report.max_relative_difference
    assert report.respawns == 1, report.respawns
    assert report.sharded_fits == report.threaded_fits
    cores = os.cpu_count() or 1
    if cores < 2:
        # Flake guard: on a single core the worker pool cannot overlap
        # fits, so the ratio only measures RPC overhead — report it,
        # never fail on it.
        print(
            f"[informational] single-core host ({cores} cpu): skipping the "
            f"throughput-ratio floor (measured {report.throughput_ratio:.2f}x)"
        )
        return
    # Multicore: sharding must stay within sanity range of the threaded
    # service even at this modest per-fit work size (its win grows with
    # per-shard fit cost; the JSON records the trajectory).
    assert report.throughput_ratio >= 0.2, (
        f"sharded throughput collapsed: {report.throughput_ratio:.2f}x"
    )


def test_sharded_serving_burst(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(run_sharded_serving, rounds=1, iterations=1)
    record_result("sharded_serving", format_report(report))
    write_json(report)
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller burst stream for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_sharded_serving(quick=arguments.quick)
    print(format_report(final))
    write_json(final)
    check_report(final)
