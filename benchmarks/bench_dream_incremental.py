"""Incremental DREAM vs the seed batch path at Example 3.1 scale.

The hot loop of the paper's optimizer: every query submission must cost
*every* equivalent QEP (Example 3.1: thousands of configurations for one
plan) from a freshly chosen training window, under a drifting load
(``cloud/variability.py``).  This benchmark replays that loop over a
TPC-H federation history two ways:

* **seed path** — batch :class:`DreamEstimator` refits every window size
  from scratch on each call and predictions walk the candidate set in a
  per-row Python loop (the repository's original behaviour);
* **incremental path** — :class:`OnlineDreamEstimator` reuses state
  across ticks (version cache + rank-one window growth) and
  ``DreamResult.predict_batch`` costs the whole candidate set with one
  matmul + vectorised clamp per metric.

Both paths must choose identical windows and agree on every prediction
to 1e-6; the incremental path must be at least 5x faster end to end.

Run standalone:  PYTHONPATH=src python benchmarks/bench_dream_incremental.py [--quick]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from repro.common.rng import RngStream
from repro.core import DreamEstimator, ExecutionHistory, OnlineDreamEstimator
from repro.plans.binder import plan_sql
from repro.plans.optimizer import optimize
from repro.tpch.queries import TPCH_QUERIES
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload

R2_REQUIRED = 0.8
MAX_WINDOW = 40
#: Optimizer calls per executed query (plan costing happens more often
#: than execution — e.g. re-planning under different user policies).
CALLS_PER_TICK = 2


@dataclass(frozen=True)
class IncrementalReport:
    candidate_count: int
    ticks: int
    seed_seconds: float
    incremental_seconds: float
    max_relative_difference: float
    windows_identical: bool
    mean_window: float

    @property
    def speedup(self) -> float:
        return self.seed_seconds / self.incremental_seconds


def _qep_space_workload(quick: bool) -> TpchFederationWorkload:
    """A q12 federation whose QEP space tops 1000 candidates."""
    return TpchFederationWorkload(
        TpchFederationConfig(
            scale_mib=100.0,
            queries=("q12",),
            drift="paper",  # default_federation_load drift
            fixed_execution=None,  # both engines -> indicator feature
            node_options={
                "cloud-a": list(range(2, 22)),  # 20 options
                "cloud-b": list(range(2, 28)),  # 26 options
            },
        )
    )


def run_dream_incremental(quick: bool = False) -> IncrementalReport:
    warmup_runs = 20 if quick else 40
    ticks = 10 if quick else 30

    workload = _qep_space_workload(quick)
    template = TPCH_QUERIES["q12"]
    source = workload.build_history("q12", warmup_runs + ticks)

    params = template.sample_params(RngStream(23, "bench-params"))
    plan = optimize(plan_sql(template.render(params), workload.dataset.catalog))
    candidates = workload.enumerator.enumerate(
        "q12", plan, workload.dataset.logical_stats, template.tables
    )
    feature_names = source.feature_names
    matrix = np.array(
        [[c.features[name] for name in feature_names] for c in candidates],
        dtype=float,
    )

    # Replay the stream: warm up, then per tick append one execution and
    # run CALLS_PER_TICK optimizer costings of the full candidate set.
    replay = ExecutionHistory(feature_names, source.metric_names)
    observations = source.observations
    for obs in observations[:warmup_runs]:
        replay.append(obs.tick, obs.features, obs.costs)

    batch = DreamEstimator(r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    online = OnlineDreamEstimator(r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    metrics = source.metric_names

    seed_seconds = 0.0
    incremental_seconds = 0.0
    max_diff = 0.0
    windows_identical = True
    windows: list[int] = []

    for obs in observations[warmup_runs:]:
        replay.append(obs.tick, obs.features, obs.costs)

        started = time.perf_counter()
        for _ in range(CALLS_PER_TICK):
            seed_result = batch.fit(replay.datasets())
            seed_rows = [seed_result.predict(row) for row in matrix]
        seed_seconds += time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(CALLS_PER_TICK):
            fast_result = online.fit(replay)
            fast_columns = fast_result.predict_batch(matrix)
        incremental_seconds += time.perf_counter() - started

        windows_identical &= seed_result.window_size == fast_result.window_size
        windows_identical &= seed_result.window_sizes == fast_result.window_sizes
        windows.append(fast_result.window_size)
        for j, metric in enumerate(metrics):
            seed_column = np.array([row[metric] for row in seed_rows])
            scale = np.maximum(np.abs(seed_column), 1e-9)
            max_diff = max(
                max_diff,
                float(np.max(np.abs(seed_column - fast_columns[metric]) / scale)),
            )

    return IncrementalReport(
        candidate_count=len(candidates),
        ticks=ticks,
        seed_seconds=seed_seconds,
        incremental_seconds=incremental_seconds,
        max_relative_difference=max_diff,
        windows_identical=windows_identical,
        mean_window=float(np.mean(windows)),
    )


def format_report(report: IncrementalReport) -> str:
    lines = [
        "Incremental DREAM vs seed batch path (Example 3.1-scale QEP space)",
        "------------------------------------------------------------------",
        f"QEP candidates per costing    : {report.candidate_count}",
        f"ticks x optimizer calls       : {report.ticks} x {CALLS_PER_TICK}",
        f"mean DREAM window             : {report.mean_window:.1f}",
        f"seed path (refit + row loop)  : {report.seed_seconds * 1e3:8.1f} ms",
        f"incremental (RLS + batch)     : {report.incremental_seconds * 1e3:8.1f} ms",
        f"speedup                       : {report.speedup:8.1f}x",
        f"max relative prediction diff  : {report.max_relative_difference:.2e}",
        f"windows identical             : {report.windows_identical}",
    ]
    return "\n".join(lines)


def check_report(report: IncrementalReport) -> None:
    assert report.candidate_count >= 1000, report.candidate_count
    assert report.windows_identical
    assert report.max_relative_difference <= 1e-6
    assert report.speedup >= 5.0, f"speedup only {report.speedup:.1f}x"


def test_dream_incremental_speedup(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(run_dream_incremental, rounds=1, iterations=1)
    record_result("dream_incremental", format_report(report))
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller stream for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_dream_incremental(quick=arguments.quick)
    print(format_report(final))
    check_report(final)
