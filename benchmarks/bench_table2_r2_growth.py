"""Table 2 — MLR R^2 vs training-set size on the paper's own dataset."""

from conftest import record_result

from repro.experiments import format_table2, run_table2


def test_table2_r2_growth(benchmark):
    result = benchmark(run_table2)
    record_result("table2_r2_growth", format_table2(result))
    # Numerical reproduction: our OLS must match the paper's R^2 column.
    assert result.max_abs_difference < 1e-3
    # The paper's threshold discussion: R^2 >= 0.8 is first reached at M=6.
    assert result.first_m_above_08 == 6
    # R^2 "in general rises with M" (paper): endpoints confirm the trend.
    assert result.r_squared[10][0] > result.r_squared[4][0]
