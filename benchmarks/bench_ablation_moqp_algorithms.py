"""Ablation — NSGA-II vs NSGA-G vs exhaustive search on the QEP space.

Compares the two genetic optimizers the paper discusses (NSGA-II [10]
and the authors' NSGA-G [22]) against the exact Pareto front: fraction
of exact-front hypervolume covered and cost-model evaluations spent.
"""

import time

from conftest import record_result

from repro.common.text import render_table
from repro.ires.modelling import DreamStrategy
from repro.ires.optimizer import MultiObjectiveOptimizer, OptimizerConfig
from repro.moqp.nsga2 import Nsga2Config
from repro.moqp.nsga_g import NsgaGConfig
from repro.moqp.pareto import hypervolume_2d, pareto_front_indices
from repro.moqp.wsm import normalise_objectives
from repro.plans.binder import plan_sql
from repro.plans.optimizer import optimize
from repro.tpch.queries import TPCH_QUERIES
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload

NODE_MENU = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32]


def run_algorithm_ablation():
    workload = TpchFederationWorkload(
        TpchFederationConfig(
            scale_mib=100,
            queries=("q12",),
            node_options={"cloud-a": NODE_MENU, "cloud-b": NODE_MENU},
            fixed_execution=None,
        )
    )
    history = workload.build_history("q12", 40)
    cost_model = DreamStrategy().fit(history)
    template = TPCH_QUERIES["q12"]
    params = template.sample_params(workload._param_rng)
    plan = optimize(plan_sql(template.render(params), workload.dataset.catalog))
    candidates = workload.enumerator.enumerate(
        "q12", plan, workload.dataset.logical_stats, template.tables
    )
    metrics = ("time", "money")
    optimizer = MultiObjectiveOptimizer()

    exact_problem = optimizer.build_problem(candidates, cost_model, metrics)
    start = time.perf_counter()
    evaluated = exact_problem.evaluate_all()
    exact_seconds = time.perf_counter() - start
    vectors = [c.objectives for c in evaluated]
    normalised = normalise_objectives(vectors)
    reference = (1.1, 1.1)
    exact_front = pareto_front_indices(vectors)
    exact_hv = hypervolume_2d([normalised[i] for i in exact_front], reference)
    index_of = {id(c): i for i, c in enumerate(candidates)}

    results = {
        "exact": {
            "front": len(exact_front),
            "evaluations": exact_problem.evaluation_count,
            "hv_ratio": 1.0,
            "seconds": exact_seconds,
        }
    }
    for name, config in (
        ("nsga2", OptimizerConfig(algorithm="nsga2", nsga2=Nsga2Config(seed=3))),
        ("nsga-g", OptimizerConfig(algorithm="nsga-g", nsga_g=NsgaGConfig(seed=3))),
    ):
        problem = MultiObjectiveOptimizer(config).build_problem(
            candidates, cost_model, metrics
        )
        start = time.perf_counter()
        front = MultiObjectiveOptimizer(config).pareto_set(candidates, cost_model, metrics)
        seconds = time.perf_counter() - start
        hv = hypervolume_2d(
            [normalised[index_of[id(c.payload)]] for c in front], reference
        )
        results[name] = {
            "front": len(front),
            # pareto_set built its own problem; count evaluations as the
            # distinct candidates it had to cost (population dynamics).
            "evaluations": min(len(candidates), Nsga2Config().population_size * (Nsga2Config().generations + 1)),
            "hv_ratio": hv / exact_hv if exact_hv > 0 else 1.0,
            "seconds": seconds,
        }
    return len(candidates), results


def test_ablation_moqp_algorithms(benchmark):
    candidate_count, results = benchmark.pedantic(
        run_algorithm_ablation, rounds=1, iterations=1
    )
    rows = [
        (
            name,
            stats["front"],
            f"{stats['hv_ratio']:.3f}",
            f"{stats['seconds'] * 1000:.1f} ms",
        )
        for name, stats in results.items()
    ]
    text = render_table(
        ["algorithm", "front size", "hypervolume ratio", "wall time"],
        rows,
        title=f"Ablation: MOQP algorithms on a {candidate_count}-candidate QEP space.",
    )
    record_result("ablation_moqp_algorithms", text)
    assert results["nsga2"]["hv_ratio"] > 0.8
    assert results["nsga-g"]["hv_ratio"] > 0.7
    # The exact front is the reference: genetic fronts cannot exceed it.
    assert results["nsga2"]["hv_ratio"] <= 1.0 + 1e-9
    assert results["nsga-g"]["hv_ratio"] <= 1.0 + 1e-9
