"""Elastic rebalancing vs static CRC32 placement on skewed tenant load.

CRC32 hash placement (PR 5) is uniform over *keys*, but federation load
is skewed over *work*: here eight hot hospital templates — deliberately
chosen so CRC32 colocates them all on shard 0 of 2 — go stale and refit
on EVERY burst, while four cold templates on shard 1 receive a row (and
therefore a refit) only every fourth burst.  Two identical sharded
services replay the identical stream:

* **static** — placement stays wherever CRC32 put it; every burst's
  coalesced fit round serialises the eight hot fits on shard 0 while
  shard 1 naps;
* **elastic** — one :class:`~repro.serving.RebalancePolicy` control
  cycle runs between bursts (the gateway's cadence hook, driven here
  directly), migrating hot templates onto the cold shard until the
  heat hysteresis says balanced.

An un-timed settle phase runs the identical skewed schedule first: a
template's very first fit (full window search) costs an order of
magnitude more than its steady-state incremental refits, and until the
per-fit wall-time EWMAs shake that startup transient off, the heat
metric would chase stale outliers.  The measured phase then compares
converged steady states — which is also the regime a long-lived
federation gateway actually serves in.

Correctness is the hard gate for BOTH placements: identical window
choices and a max relative prediction difference <= 1e-9 against the
in-process oracle on the final models (placement must never change a
number), and identical fit counters.  The burst-throughput ratio
(static seconds / elastic seconds) is asserted above 1.0 only on
multicore hosts — on a single core both placements serialise on the
same CPU and the ratio is informational (printed and recorded, never a
failure).

Results are emitted machine-readable to
``benchmarks/results/BENCH_rebalance.json`` (a CI artifact).

Run standalone:  PYTHONPATH=src python benchmarks/bench_rebalance.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path

import numpy as np

from repro.common.rng import RngStream
from repro.serving import (
    EstimationService,
    RebalanceConfig,
    RebalancePolicy,
    ShardedEstimationService,
    shard_of,
)
from repro.serving.worker import dream_strategy

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_rebalance.json"

FEATURES = ("size", "nodes")
METRICS = ("time", "money")
R2_REQUIRED = 0.8
MAX_WINDOW = 48

#: Two shards keep the skew story exact: CRC32 colocates every hot
#: template on shard 0, so static placement cannot spread them.
SHARD_WORKERS = 2
HOT_TEMPLATES = 8
COLD_TEMPLATES = 4
#: Hot tenants take rows (and refit) every burst; cold tenants only
#: every COLD_PERIOD-th burst — the skew is in fit *frequency*, which is
#: exactly what the policy's fits-delta x fit-EWMA heat metric measures.
HOT_ROWS_PER_BURST = 8
COLD_ROWS_PER_BURST = 1
COLD_PERIOD = 4


def pick_keys() -> tuple[list[str], list[str]]:
    """Hot keys CRC32-homed on shard 0, cold keys on shard 1."""
    hot, cold = [], []
    index = 0
    while len(hot) < HOT_TEMPLATES or len(cold) < COLD_TEMPLATES:
        key = f"tenant-{index:03d}"
        index += 1
        if shard_of(key, SHARD_WORKERS) == 0:
            if len(hot) < HOT_TEMPLATES:
                hot.append(key)
        elif len(cold) < COLD_TEMPLATES:
            cold.append(key)
    return hot, cold


def observation_stream(key: str, ticks: int):
    rng = RngStream(59, "rebalance", key)
    out = []
    for tick in range(ticks):
        size = float(rng.uniform(10, 100))
        nodes = float(rng.integers(2, 9))
        cost_time = (5 + 0.4 * size / nodes) * (1 + float(rng.normal(0, 0.03)))
        money = 0.01 * size + 0.002 * nodes * cost_time
        out.append(
            (tick, {"size": size, "nodes": nodes}, {"time": cost_time, "money": money})
        )
    return out


@dataclass(frozen=True)
class RebalanceReport:
    hot_templates: int
    cold_templates: int
    bursts: int
    shard_workers: int
    static_seconds: float
    elastic_seconds: float
    control_seconds: float
    migrations: int
    final_route_version: int
    max_relative_difference: float
    windows_identical: bool
    static_fits: int
    elastic_fits: int
    threaded_fits: int

    @property
    def throughput_ratio(self) -> float:
        """Static vs elastic burst time (>1 means rebalancing won)."""
        return self.static_seconds / self.elastic_seconds


def run_rebalance(quick: bool = False) -> RebalanceReport:
    bursts = 8 if quick else 16
    settle_bursts = 8 if quick else 12
    hot_warmup = 60 if quick else 120
    cold_warmup = 8

    hot, cold = pick_keys()
    keys = hot + cold
    total_bursts = settle_bursts + bursts

    def rows_for(key: str, burst: int) -> int:
        if key in hot:
            return HOT_ROWS_PER_BURST
        return COLD_ROWS_PER_BURST if burst % COLD_PERIOD == COLD_PERIOD - 1 else 0

    warmup = {key: hot_warmup if key in hot else cold_warmup for key in keys}
    streams = {
        key: observation_stream(
            key,
            warmup[key] + sum(rows_for(key, burst) for burst in range(total_bursts)),
        )
        for key in keys
    }
    probe = RngStream(61, "probe").uniform(5.0, 120.0, size=(64, len(FEATURES)))

    factory = partial(dream_strategy, r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    threaded = EstimationService(
        strategy=dream_strategy(r2_required=R2_REQUIRED, max_window=MAX_WINDOW)
    )
    static = ShardedEstimationService(factory, workers=SHARD_WORKERS)
    elastic = ShardedEstimationService(factory, workers=SHARD_WORKERS)
    services = (threaded, static, elastic)
    # A tight hysteresis band (vs the conservative defaults) lets the
    # policy walk the colocated hot set to a near-even heat split within
    # the first few cycles instead of stopping at "merely less skewed".
    policy = RebalancePolicy(
        RebalanceConfig(max_moves=4, hot_factor=1.05, cold_factor=0.95)
    )

    cursors = {key: 0 for key in keys}

    def feed(key: str, rows: int) -> None:
        start = cursors[key]
        cursors[key] = start + rows
        for tick, features, costs in streams[key][start : start + rows]:
            for service in services:
                service.record(key, tick, features, costs)

    try:
        for key in keys:
            for service in services:
                service.register(key, feature_names=FEATURES, metrics=METRICS)
            feed(key, warmup[key])
        # Settle phase (un-timed): identical skewed schedule, control
        # loop running, so first-fit EWMA transients wash out and the
        # elastic placement converges before the clock starts.
        for burst in range(settle_bursts):
            for key in keys:
                feed(key, rows_for(key, burst))
            threaded.refresh(parallel=True)
            static.refresh(parallel=True)
            elastic.refresh(parallel=True)
            elastic.rebalance(policy)

        static_seconds = 0.0
        elastic_seconds = 0.0
        control_seconds = 0.0
        for burst in range(settle_bursts, total_bursts):
            for key in keys:
                feed(key, rows_for(key, burst))
            threaded.refresh(parallel=True)

            started = time.perf_counter()
            static.refresh(parallel=True)
            static_seconds += time.perf_counter() - started

            started = time.perf_counter()
            elastic.refresh(parallel=True)
            elastic_seconds += time.perf_counter() - started

            # The control loop runs after the serving burst, exactly
            # like the gateway's per-flush cadence hook.
            started = time.perf_counter()
            elastic.rebalance(policy)
            control_seconds += time.perf_counter() - started

        # Hard gate: final models agree bitwise-level with the oracle on
        # BOTH placements (the JSON keeps the measured difference).
        max_diff = 0.0
        windows_identical = True
        for key in keys:
            want = threaded.model(key)
            reference = want.predict_batch(probe)
            for contender in (static, elastic):
                got = contender.model(key)
                windows_identical &= got.training_size == want.training_size
                columns = got.predict_batch(probe)
                for metric in METRICS:
                    scale = np.maximum(np.abs(reference[metric]), 1e-9)
                    max_diff = max(
                        max_diff,
                        float(np.max(np.abs(columns[metric] - reference[metric]) / scale)),
                    )
        return RebalanceReport(
            hot_templates=len(hot),
            cold_templates=len(cold),
            bursts=bursts,
            shard_workers=SHARD_WORKERS,
            static_seconds=static_seconds,
            elastic_seconds=elastic_seconds,
            control_seconds=control_seconds,
            migrations=elastic.migrations,
            final_route_version=elastic.route_version,
            max_relative_difference=max_diff,
            windows_identical=windows_identical,
            static_fits=static.stats.fits,
            elastic_fits=elastic.stats.fits,
            threaded_fits=threaded.stats.fits,
        )
    finally:
        static.close()
        elastic.close()


def format_report(report: RebalanceReport) -> str:
    lines = [
        "Elastic rebalancing vs static CRC32 placement (skewed load)",
        "-----------------------------------------------------------",
        f"hot / cold templates          : {report.hot_templates} / {report.cold_templates}"
        f" (hot all CRC32-homed on shard 0 of {report.shard_workers})",
        f"bursts                        : {report.bursts}",
        f"static placement              : {report.static_seconds * 1e3:8.1f} ms",
        f"elastic placement             : {report.elastic_seconds * 1e3:8.1f} ms",
        f"elastic vs static             : {report.throughput_ratio:8.2f}x",
        f"control-loop overhead         : {report.control_seconds * 1e3:8.1f} ms",
        f"migrations (route version)    : {report.migrations} (v{report.final_route_version})",
        f"fits (static/elastic/oracle)  : {report.static_fits} / {report.elastic_fits} / {report.threaded_fits}",
        f"max relative prediction diff  : {report.max_relative_difference:.2e}",
        f"windows identical             : {report.windows_identical}",
    ]
    return "\n".join(lines)


def write_json(report: RebalanceReport) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "rebalance",
        "hot_templates": report.hot_templates,
        "cold_templates": report.cold_templates,
        "bursts": report.bursts,
        "shard_workers": report.shard_workers,
        "host_cpu_count": os.cpu_count(),
        "static_ms": round(report.static_seconds * 1e3, 3),
        "elastic_ms": round(report.elastic_seconds * 1e3, 3),
        "throughput_ratio": round(report.throughput_ratio, 3),
        "control_ms": round(report.control_seconds * 1e3, 3),
        "migrations": report.migrations,
        "final_route_version": report.final_route_version,
        "max_relative_difference": report.max_relative_difference,
        "windows_identical": report.windows_identical,
        "static_fits": report.static_fits,
        "elastic_fits": report.elastic_fits,
        "threaded_fits": report.threaded_fits,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def check_report(report: RebalanceReport) -> None:
    # Correctness gates: placement never changes a number, on either
    # placement, and the control loop actually moved work.
    assert report.windows_identical
    assert report.max_relative_difference <= 1e-9, report.max_relative_difference
    assert report.static_fits == report.threaded_fits
    assert report.elastic_fits == report.threaded_fits
    assert report.migrations >= 1, "the policy never moved a template"
    cores = os.cpu_count() or 1
    if cores < 2:
        print(
            f"[informational] single-core host ({cores} cpu): skipping the "
            f"elastic-vs-static floor (measured {report.throughput_ratio:.2f}x)"
        )
        return
    # Multicore: spreading the colocated hot templates must beat the
    # one-shard pile-up (the JSON records the trajectory).
    assert report.throughput_ratio > 1.0, (
        f"elastic lost to static on skewed load: {report.throughput_ratio:.2f}x"
    )


def test_rebalance_bench(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(run_rebalance, rounds=1, iterations=1)
    record_result("rebalance", format_report(report))
    write_json(report)
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller burst stream for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_rebalance(quick=arguments.quick)
    print(format_report(final))
    write_json(final)
    check_report(final)
