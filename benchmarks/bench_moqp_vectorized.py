"""Vectorized MOQP engine vs the scalar oracle at Example 3.1 scale.

The paper's Example 3.1: one query, 70 vCPU x 260 GB = 18,200 equivalent
QEP configurations.  PR 1-3 made *predicting* that space a ~40 ms batch
operation, which left the Multi-Objective Optimizer as the hot path: the
pure-Python O(n²) `pareto_front_indices_py` pairwise scan cannot chew
through 18,200 points in reasonable time (which is why `exact_limit`
used to silently degrade to NSGA-II), and the genetic optimizers used to
evaluate candidates one Python call at a time.

This benchmark measures, at n ∈ {1,000 / 5,000 / 18,200} points of the
real Example 3.1 configuration space:

* **exact front** — vectorized sort-assisted `pareto_front_indices` vs
  the retained scalar oracle: identical indices required, speedup
  reported (≥ 10x asserted at the largest n);
* **NSGA generation throughput** — NSGA-II and NSGA-G over a
  matrix-backed `EnumeratedProblem` (one batched evaluation per
  generation) vs the same algorithms driven scalar-per-candidate:
  identical seeded fronts required.

Results are printed, persisted as text, and emitted machine-readable to
``benchmarks/results/BENCH_moqp.json`` so the perf trajectory is
diffable from this PR onward (CI uploads it as an artifact).

Run standalone:  PYTHONPATH=src python benchmarks/bench_moqp_vectorized.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ires.enumerator import vm_configuration_space
from repro.moqp.nsga2 import Nsga2, Nsga2Config
from repro.moqp.nsga_g import NsgaG, NsgaGConfig
from repro.moqp.pareto import pareto_front_indices, pareto_front_indices_py
from repro.moqp.problem import EnumeratedProblem

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_moqp.json"

VCPU_POOL = 70
MEMORY_POOL_GB = 260
NSGA_CONFIG = dict(population_size=64, generations=40, seed=17)


def example31_objectives(n: int | None = None) -> np.ndarray:
    """Predicted (time, money) for the Example 3.1 configuration space.

    A deterministic cost surface over the real (vcpus, memory) grid:
    execution time falls with resources (with mild interference ripple so
    the front is not degenerate), money rises with the paper's per-unit
    rates.  ``n`` subsamples the space deterministically.
    """
    space = np.asarray(
        vm_configuration_space(VCPU_POOL, MEMORY_POOL_GB), dtype=float
    )
    if n is not None and n < space.shape[0]:
        keep = np.linspace(0, space.shape[0] - 1, n).astype(int)
        space = space[keep]
    vcpus, memory = space[:, 0], space[:, 1]
    ripple = 0.05 * np.sin(vcpus * 1.7) * np.cos(memory * 0.9)
    time_cost = 180.0 / vcpus + 45.0 / memory + 2.0 + ripple
    money_cost = 0.048 * vcpus + 0.0075 * memory
    return np.column_stack([time_cost, money_cost])


def matrix_problem(objectives: np.ndarray) -> EnumeratedProblem:
    """A matrix-backed problem over precomputed objective rows (the shape
    `MultiObjectiveOptimizer.build_problem` produces from a feature
    matrix + `predict_matrix`)."""
    rows = [tuple(map(float, row)) for row in objectives]
    return EnumeratedProblem(
        list(range(len(rows))),
        lambda i: rows[i],
        2,
        evaluate_batch=lambda indices: objectives[list(indices)],
    )


def scalar_problem(objectives: np.ndarray) -> EnumeratedProblem:
    rows = [tuple(map(float, row)) for row in objectives]
    return EnumeratedProblem(list(range(len(rows))), lambda i: rows[i], 2)


@dataclass
class SizeReport:
    n: int
    front_size: int
    exact_vectorized_ms: float
    exact_scalar_ms: float
    indices_identical: bool
    nsga2_generations_per_s: float
    nsga2_ms: float
    nsga_g_generations_per_s: float
    nsga_g_ms: float
    nsga_fronts_identical: bool

    @property
    def exact_speedup(self) -> float:
        return self.exact_scalar_ms / self.exact_vectorized_ms


@dataclass
class MoqpReport:
    quick: bool
    sizes: list[SizeReport] = field(default_factory=list)

    @property
    def largest(self) -> SizeReport:
        return max(self.sizes, key=lambda s: s.n)


def _best_of(callable_, repeats: int) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - started)
    return best, value


def run_moqp_vectorized(quick: bool = False) -> MoqpReport:
    sizes = (1_000, 5_000) if quick else (1_000, 5_000, 18_200)
    report = MoqpReport(quick=quick)
    for n in sizes:
        objectives = example31_objectives(n)
        points = [tuple(map(float, row)) for row in objectives]

        fast_seconds, fast_front = _best_of(
            lambda: pareto_front_indices(points), repeats=3
        )
        slow_seconds, slow_front = _best_of(
            lambda: pareto_front_indices_py(points), repeats=1
        )

        generations = NSGA_CONFIG["generations"]
        nsga2_cfg = Nsga2Config(**NSGA_CONFIG)
        nsga2_seconds, nsga2_front = _best_of(
            lambda: Nsga2(nsga2_cfg).optimise(matrix_problem(objectives)), repeats=3
        )
        nsga2_scalar = Nsga2(nsga2_cfg).optimise(scalar_problem(objectives))

        nsga_g_cfg = NsgaGConfig(**NSGA_CONFIG)
        nsga_g_seconds, nsga_g_front = _best_of(
            lambda: NsgaG(nsga_g_cfg).optimise(matrix_problem(objectives)), repeats=3
        )
        nsga_g_scalar = NsgaG(nsga_g_cfg).optimise(scalar_problem(objectives))

        def key(front):
            return [(c.payload, c.objectives) for c in front]

        report.sizes.append(
            SizeReport(
                n=n,
                front_size=len(fast_front),
                exact_vectorized_ms=fast_seconds * 1e3,
                exact_scalar_ms=slow_seconds * 1e3,
                indices_identical=fast_front == slow_front,
                nsga2_generations_per_s=generations / nsga2_seconds,
                nsga2_ms=nsga2_seconds * 1e3,
                nsga_g_generations_per_s=generations / nsga_g_seconds,
                nsga_g_ms=nsga_g_seconds * 1e3,
                nsga_fronts_identical=(
                    key(nsga2_front) == key(nsga2_scalar)
                    and key(nsga_g_front) == key(nsga_g_scalar)
                ),
            )
        )
    return report


def format_report(report: MoqpReport) -> str:
    lines = [
        "Vectorized MOQP engine vs scalar oracle (Example 3.1 space)",
        "-----------------------------------------------------------",
        f"{'n':>7} {'front':>6} {'exact-vec':>10} {'exact-py':>10} "
        f"{'speedup':>8} {'nsga2 gen/s':>12} {'nsga-g gen/s':>12} {'identical':>10}",
    ]
    for s in report.sizes:
        lines.append(
            f"{s.n:>7} {s.front_size:>6} {s.exact_vectorized_ms:>8.1f}ms "
            f"{s.exact_scalar_ms:>8.1f}ms {s.exact_speedup:>7.1f}x "
            f"{s.nsga2_generations_per_s:>12.1f} {s.nsga_g_generations_per_s:>12.1f} "
            f"{str(s.indices_identical and s.nsga_fronts_identical):>10}"
        )
    largest = report.largest
    lines.append(
        f"largest space: n={largest.n}, exact front in "
        f"{largest.exact_vectorized_ms:.1f} ms ({largest.exact_speedup:.1f}x over "
        f"the scalar scan), fronts identical={largest.indices_identical}"
    )
    return "\n".join(lines)


def write_json(report: MoqpReport) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "moqp_vectorized",
        "quick": report.quick,
        "space": {"vcpu_pool": VCPU_POOL, "memory_pool_gb": MEMORY_POOL_GB},
        "nsga": NSGA_CONFIG,
        "sizes": [
            {
                "n": s.n,
                "front_size": s.front_size,
                "exact_vectorized_ms": round(s.exact_vectorized_ms, 3),
                "exact_scalar_ms": round(s.exact_scalar_ms, 3),
                "exact_speedup": round(s.exact_speedup, 2),
                "indices_identical": s.indices_identical,
                "nsga2_ms": round(s.nsga2_ms, 3),
                "nsga2_generations_per_s": round(s.nsga2_generations_per_s, 2),
                "nsga_g_ms": round(s.nsga_g_ms, 3),
                "nsga_g_generations_per_s": round(s.nsga_g_generations_per_s, 2),
                "nsga_fronts_identical": s.nsga_fronts_identical,
            }
            for s in report.sizes
        ],
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def check_report(report: MoqpReport) -> None:
    for s in report.sizes:
        assert s.indices_identical, f"exact front diverged at n={s.n}"
        assert s.nsga_fronts_identical, f"NSGA fronts diverged at n={s.n}"
    largest = report.largest
    if not report.quick:
        assert largest.n == 18_200, largest.n
    assert largest.exact_speedup >= 10.0, (
        f"exact-front speedup only {largest.exact_speedup:.1f}x at n={largest.n}"
    )


def test_moqp_vectorized_speedup(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(run_moqp_vectorized, rounds=1, iterations=1)
    record_result("moqp_vectorized", format_report(report))
    write_json(report)
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller spaces for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_moqp_vectorized(quick=arguments.quick)
    print(format_report(final))
    write_json(final)
    check_report(final)
