"""Table 3 — MRE of DREAM vs BML windows, TPC-H 100 MiB.

Shape asserted (see EXPERIMENTS.md for the full discussion):

* DREAM beats the stock full-history BML on every query by a wide
  margin — the paper's headline "expired information" effect;
* DREAM is within noise of the best fixed observation window on every
  query (in the paper it is strictly smallest; our simulator's 100 MiB
  regime is engine-overhead-dominated, which flattens the window curve);
* DREAM's training window stays small ("around N", paper §4.3).
"""

from conftest import record_result

from repro.experiments import PAPER_TABLE3, format_mre_table, run_mre_experiment
from repro.experiments.mre import ESTIMATOR_ORDER, MreExperimentConfig


def test_table3_mre_100mib(benchmark):
    config = MreExperimentConfig(scale_mib=100.0)
    result = benchmark.pedantic(run_mre_experiment, args=(config,), rounds=1, iterations=1)
    record_result(
        "table3_mre_100mib",
        format_mre_table(result, PAPER_TABLE3, "Table 3: MRE, TPC-H 100 MiB (paper values in parentheses)"),
    )
    for query, row in result.mre.items():
        dream = row["DREAM"]
        # vs stock IReS (full history): a clear win everywhere.
        assert dream < 0.66 * row["BML"], (query, row)
        # vs the best fixed window: within noise of the winner.
        best_fixed = min(row[label] for label in ESTIMATOR_ORDER if label != "DREAM")
        assert dream <= 1.25 * best_fixed, (query, row)
    # DREAM's window stays small (paper: "around N").
    for query, mean_window in result.dream_window_mean.items():
        assert mean_window <= 4 * result.minimum_window, (query, mean_window)
