"""Table 4 — MRE of DREAM vs BML windows, TPC-H 1 GiB.

At the larger scale the size features dominate the cost structure and
the paper's full shape reproduces: DREAM's MRE is the smallest value in
every row.
"""

from conftest import record_result

from repro.experiments import PAPER_TABLE4, format_mre_table, run_mre_experiment
from repro.experiments.mre import MreExperimentConfig


def test_table4_mre_1gib(benchmark):
    config = MreExperimentConfig(scale_mib=1024.0)
    result = benchmark.pedantic(run_mre_experiment, args=(config,), rounds=1, iterations=1)
    record_result(
        "table4_mre_1gib",
        format_mre_table(result, PAPER_TABLE4, "Table 4: MRE, TPC-H 1 GiB (paper values in parentheses)"),
    )
    assert result.dream_wins_everywhere(), result.mre
    for query, row in result.mre.items():
        assert row["DREAM"] < 0.66 * row["BML"], (query, row)
    for query, mean_window in result.dream_window_mean.items():
        assert mean_window <= 4 * result.minimum_window, (query, mean_window)
