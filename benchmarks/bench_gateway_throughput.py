"""Front-door ingest throughput over a 100-tenant federation gateway.

The ISSUE 6 acceptance harness for the batch-first ingest pipeline: a
:class:`~repro.midas.MidasSystem` gateway carrying **100 tenant
templates** (clones of the three medical queries) absorbs a mixed
request stream — single observes, eight-row
:class:`~repro.federation.BatchObserveRequest` envelopes, and ~5%
submissions — through ``gateway.ingest()`` with the size watermark
doing the flushing, then a final ``drain()``.

The full run pushes **>= 100_000 requests** (rows, not envelopes)
through the front door; ``--quick`` shrinks the stream for CI smoke
runs while keeping the tenant count at 100.  Reported and persisted to
``benchmarks/results/BENCH_gateway.json`` (a CI artifact, like
``BENCH_sharded.json``):

* end-to-end ingest throughput (QPS over admission + every flush);
* admission latency — p50 is the lock-and-enqueue cost; the tail
  (p99/max) is an admission that paid for an inline watermark flush;
* time-to-first-report — the front door runs in pipelined streaming
  mode (``ingest_pipeline=True``, ``ingest_segment_max=64``), so a
  flush's early segments resolve their tickets while later segments
  still execute; per flush, the gap between the flush-tripping
  admission and the *first* resolved ticket versus the *last* one
  (p50/p99 of both).  Streaming must put the first report strictly
  ahead of the full flush — that pair is the ISSUE 10 acceptance
  number;
* a sequential single-call baseline (same traffic shape, own gateway)
  for the throughput ratio;
* the front door's own counters (flushes, segments, fit rounds, peak
  depth).

Correctness is the hard gate: zero failed items, zero rejections, and
the admission ledger must balance (admitted == requests == flushed).
Throughput numbers are recorded; only trivially-true floors are
asserted, because the simulator pipeline — not the front door —
dominates per-item cost on any host.

Run standalone:  PYTHONPATH=src python benchmarks/bench_gateway_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from collections import defaultdict
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.common.rng import RngStream
from repro.federation import (
    BatchObserveRequest,
    FederationConfig,
    IngestStats,
    ObserveRequest,
    SubmitRequest,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_gateway.json"

TENANTS = 100
PATIENTS = 300
BATCH_ROWS = 8
INGEST_BATCH_MAX = 256
INGEST_SEGMENT_MAX = 64
FULL_REQUESTS = 100_000
QUICK_REQUESTS = 2_880
FULL_BASELINE = 4_000
QUICK_BASELINE = 1_200


@dataclass(frozen=True)
class GatewayReport:
    tenants: int
    requests: int
    envelopes: int
    baseline_requests: int
    ingest_seconds: float
    baseline_seconds: float
    admission_p50_ms: float
    admission_p99_ms: float
    admission_max_ms: float
    baseline_p50_ms: float
    baseline_p99_ms: float
    first_report_p50_ms: float
    first_report_p99_ms: float
    full_flush_p50_ms: float
    full_flush_p99_ms: float
    streamed_flushes: int
    submits: int
    failed: int
    fits: int
    ingest: IngestStats

    @property
    def ingest_qps(self) -> float:
        return self.requests / self.ingest_seconds

    @property
    def baseline_qps(self) -> float:
        return self.baseline_requests / self.baseline_seconds

    @property
    def throughput_ratio(self) -> float:
        """Ingest vs sequential single-call QPS (>1 means batching won)."""
        return self.ingest_qps / self.baseline_qps


def build_system() -> tuple[MidasSystem, list[str]]:
    """A MIDAS gateway with 100 tenant clones of the medical queries."""
    config = FederationConfig(
        max_window=24,
        ingest_batch_max=INGEST_BATCH_MAX,
        ingest_queue_depth=4 * INGEST_BATCH_MAX,
        # Pipelined streaming mode: tickets resolve per 64-item segment
        # and the next segment's safe prefits overlap with execution.
        ingest_pipeline=True,
        ingest_segment_max=INGEST_SEGMENT_MAX,
    )
    midas = MidasSystem(patient_count=PATIENTS, seed=11, config=config)
    bases = list(MEDICAL_QUERIES.values())
    keys = []
    for i in range(TENANTS):
        template = replace(bases[i % len(bases)], key=f"tenant-{i:03d}")
        midas.gateway.register_template(template)
        keys.append(template.key)
    return midas, keys


def build_traffic(keys: list[str], total: int, rng: RngStream) -> tuple[list, int]:
    """A mixed request stream of >= ``total`` rows.

    Starts with a warm phase (observes only, so every later submission
    finds history), then interleaves single observes, eight-row batch
    envelopes and ~5% submissions across all tenants.
    """
    bases = list(MEDICAL_QUERIES.values())
    template_for = {
        key: bases[i % len(bases)] for i, key in enumerate(keys)
    }

    def observe(key: str) -> ObserveRequest:
        return ObserveRequest(key, template_for[key].sample_params(rng))

    traffic: list = []
    count = 0
    # DREAM needs >= 7 observations before the first fit; 8+ warm
    # rounds guarantee every tenant can take a submission afterwards.
    warm_rounds = max(8, min(12, total // (len(keys) * 10)))
    for _ in range(warm_rounds):
        for key in keys:
            traffic.append(observe(key))
            count += 1

    slot = 0
    while count < total:
        key = keys[slot % len(keys)]
        slot += 1
        lane = slot % 20
        if lane == 0:
            traffic.append(
                SubmitRequest(key, template_for[key].sample_params(rng))
            )
            count += 1
        elif lane % 2:
            traffic.append(observe(key))
            count += 1
        else:
            rows = tuple(observe(key) for _ in range(BATCH_ROWS))
            traffic.append(BatchObserveRequest(key, rows))
            count += BATCH_ROWS
    return traffic, count


def run_gateway_throughput(quick: bool = False) -> GatewayReport:
    total = QUICK_REQUESTS if quick else FULL_REQUESTS
    baseline_total = QUICK_BASELINE if quick else FULL_BASELINE

    # Ingest path: everything through the front door, size watermark
    # flushing inline, one final drain.
    midas, keys = build_system()
    traffic, requests = build_traffic(keys, total, RngStream(5, "bench-ingest"))
    latencies = np.empty(len(traffic))
    tickets: list = []
    try:
        started = time.perf_counter()
        for position, request in enumerate(traffic):
            t0 = time.perf_counter()
            admitted = midas.gateway.ingest(request)
            latencies[position] = time.perf_counter() - t0
            if isinstance(admitted, list):
                tickets.extend(admitted)
            else:
                tickets.append(admitted)
        midas.gateway.drain()
        ingest_seconds = time.perf_counter() - started
        # Auto-flushed batches discard their IngestBatch objects, so the
        # per-item outcome ledger lives on the tickets.
        assert all(ticket.done for ticket in tickets)
        failed = sum(1 for ticket in tickets if ticket.error is not None)
        stats = midas.gateway.ingest_stats()
        fits = midas.gateway.serving_stats.fits
        submits = stats.submits
    finally:
        midas.gateway.close()

    # Time-to-first-report: per flush, the gap between the admission
    # that tripped it (the latest admitted_at in the flush — flushes run
    # inline on that caller) and the first/last resolved ticket.
    # Streaming pays off exactly when first << full.
    by_flush: dict[int, list] = defaultdict(list)
    for ticket in tickets:
        by_flush[ticket.batch_seq].append(ticket)
    first_ms: list[float] = []
    full_ms: list[float] = []
    for flush_tickets in by_flush.values():
        if len(flush_tickets) < 2:
            continue
        flush_start = max(t.admitted_at for t in flush_tickets)
        first = min(t.resolved_at for t in flush_tickets)
        last = max(t.resolved_at for t in flush_tickets)
        first_ms.append((first - flush_start) * 1e3)
        full_ms.append((last - flush_start) * 1e3)
    first_p50, first_p99 = np.percentile(np.array(first_ms), [50, 99])
    full_p50, full_p99 = np.percentile(np.array(full_ms), [50, 99])

    # Sequential baseline: the same traffic shape, single calls on a
    # fresh gateway (identical environment, no front door).
    baseline, keys = build_system()
    base_traffic, base_requests = build_traffic(
        keys, baseline_total, RngStream(5, "bench-baseline")
    )
    base_latencies = []
    try:
        started = time.perf_counter()
        for request in base_traffic:
            t0 = time.perf_counter()
            if isinstance(request, SubmitRequest):
                baseline.gateway.submit(request)
            elif isinstance(request, BatchObserveRequest):
                for row in request.requests:
                    baseline.gateway.observe(row)
            else:
                baseline.gateway.observe(request)
            base_latencies.append(time.perf_counter() - t0)
        baseline_seconds = time.perf_counter() - started
    finally:
        baseline.gateway.close()

    admission_p50, admission_p99 = np.percentile(latencies * 1e3, [50, 99])
    admission_max = float(np.max(latencies) * 1e3)
    baseline_p50, baseline_p99 = np.percentile(
        np.array(base_latencies) * 1e3, [50, 99]
    )
    return GatewayReport(
        tenants=len(keys),
        requests=requests,
        envelopes=len(traffic),
        baseline_requests=base_requests,
        ingest_seconds=ingest_seconds,
        baseline_seconds=baseline_seconds,
        admission_p50_ms=float(admission_p50),
        admission_p99_ms=float(admission_p99),
        admission_max_ms=admission_max,
        baseline_p50_ms=float(baseline_p50),
        baseline_p99_ms=float(baseline_p99),
        first_report_p50_ms=float(first_p50),
        first_report_p99_ms=float(first_p99),
        full_flush_p50_ms=float(full_p50),
        full_flush_p99_ms=float(full_p99),
        streamed_flushes=len(first_ms),
        submits=submits,
        failed=failed,
        fits=fits,
        ingest=stats,
    )


def format_report(report: GatewayReport) -> str:
    lines = [
        "Front-door ingest throughput (100-tenant federation gateway)",
        "------------------------------------------------------------",
        f"tenant templates              : {report.tenants}",
        f"requests (rows / envelopes)   : {report.requests} / {report.envelopes}",
        f"ingest wall time              : {report.ingest_seconds:8.2f} s",
        f"ingest throughput             : {report.ingest_qps:8.1f} req/s",
        f"admission latency p50/p99/max : {report.admission_p50_ms:.3f} / "
        f"{report.admission_p99_ms:.3f} / {report.admission_max_ms:.1f} ms",
        f"baseline ({report.baseline_requests} single calls): "
        f"{report.baseline_qps:8.1f} req/s, "
        f"p50/p99 {report.baseline_p50_ms:.3f} / {report.baseline_p99_ms:.3f} ms",
        f"ingest vs baseline            : {report.throughput_ratio:8.2f}x",
        f"first report p50/p99          : {report.first_report_p50_ms:.1f} / "
        f"{report.first_report_p99_ms:.1f} ms "
        f"(over {report.streamed_flushes} flushes)",
        f"full flush p50/p99            : {report.full_flush_p50_ms:.1f} / "
        f"{report.full_flush_p99_ms:.1f} ms",
        f"flushes (size/interval/drain) : {report.ingest.flushes} "
        f"({report.ingest.size_flushes}/{report.ingest.interval_flushes}"
        f"/{report.ingest.drain_flushes})",
        f"segments / streamed items     : {report.ingest.segments} / "
        f"{report.ingest.streamed_items}",
        f"fit rounds -> model fits      : {report.ingest.fit_rounds} -> {report.fits}",
        f"peak queue depth              : {report.ingest.peak_depth}",
        f"failed / rejected / blocked   : {report.failed} / "
        f"{report.ingest.rejected} / {report.ingest.blocked}",
    ]
    return "\n".join(lines)


def write_json(report: GatewayReport) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "gateway_throughput",
        "tenants": report.tenants,
        "requests": report.requests,
        "envelopes": report.envelopes,
        "ingest_batch_max": INGEST_BATCH_MAX,
        "ingest_segment_max": INGEST_SEGMENT_MAX,
        "ingest_pipeline": True,
        "host_cpu_count": os.cpu_count(),
        "ingest_seconds": round(report.ingest_seconds, 3),
        "ingest_qps": round(report.ingest_qps, 1),
        "admission_p50_ms": round(report.admission_p50_ms, 4),
        "admission_p99_ms": round(report.admission_p99_ms, 4),
        "admission_max_ms": round(report.admission_max_ms, 3),
        "baseline_requests": report.baseline_requests,
        "baseline_seconds": round(report.baseline_seconds, 3),
        "baseline_qps": round(report.baseline_qps, 1),
        "baseline_p50_ms": round(report.baseline_p50_ms, 4),
        "baseline_p99_ms": round(report.baseline_p99_ms, 4),
        "throughput_ratio": round(report.throughput_ratio, 3),
        "first_report_p50_ms": round(report.first_report_p50_ms, 3),
        "first_report_p99_ms": round(report.first_report_p99_ms, 3),
        "full_flush_p50_ms": round(report.full_flush_p50_ms, 3),
        "full_flush_p99_ms": round(report.full_flush_p99_ms, 3),
        "streamed_flushes": report.streamed_flushes,
        "submits": report.submits,
        "failed": report.failed,
        "fits": report.fits,
        "flushes": report.ingest.flushes,
        "size_flushes": report.ingest.size_flushes,
        "drain_flushes": report.ingest.drain_flushes,
        "fit_rounds": report.ingest.fit_rounds,
        "segments": report.ingest.segments,
        "streamed_items": report.ingest.streamed_items,
        "items_flushed": report.ingest.items_flushed,
        "max_batch": report.ingest.max_batch,
        "peak_depth": report.ingest.peak_depth,
        "rejected": report.ingest.rejected,
        "blocked": report.ingest.blocked,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def check_report(report: GatewayReport) -> None:
    assert report.tenants >= 100, report.tenants
    # The admission ledger must balance: every row admitted, every row
    # flushed, nothing rejected, nothing failed.
    assert report.failed == 0, report.failed
    assert report.ingest.rejected == 0, report.ingest.rejected
    assert report.ingest.admitted == report.requests
    assert report.ingest.items_flushed == report.requests
    assert report.ingest.pending == 0
    # The size watermark actually drove the run (not one giant drain).
    assert report.ingest.size_flushes >= report.requests // (2 * INGEST_BATCH_MAX)
    assert report.ingest.max_batch <= INGEST_BATCH_MAX + BATCH_ROWS
    # Submissions found history (warm phase ordering held) and fitted.
    assert report.submits > 0 and report.fits > 0
    assert report.ingest.fit_rounds > 0
    # Streaming actually subdivided the flushes and resolved early
    # segments before flush end...
    assert report.ingest.segments > report.ingest.flushes
    assert report.ingest.streamed_items > 0
    assert report.streamed_flushes > 0
    # ...which is the acceptance gate: the first report of a flush must
    # land strictly before the flush completes, at the median and tail.
    assert report.first_report_p50_ms < report.full_flush_p50_ms, (
        report.first_report_p50_ms,
        report.full_flush_p50_ms,
    )
    assert report.first_report_p99_ms < report.full_flush_p99_ms
    # Throughput floors are sanity-only: the simulator dominates
    # per-item cost, so real numbers live in BENCH_gateway.json.
    assert report.ingest_qps > 10, report.ingest_qps
    assert report.admission_max_ms >= report.admission_p99_ms >= report.admission_p50_ms


def test_gateway_throughput(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(
        run_gateway_throughput, kwargs={"quick": True}, rounds=1, iterations=1
    )
    record_result("gateway_throughput", format_report(report))
    write_json(report)
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller request stream for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_gateway_throughput(quick=arguments.quick)
    print(format_report(final))
    write_json(final)
    check_report(final)
