"""WAL journaling overhead across fsync policies (ISSUE 9).

The durability tentpole's pricing harness: the same mixed request
stream ``bench_gateway_throughput`` pushes through the front door — 100
tenant templates, single observes, eight-row batch envelopes, ~5%
submissions — runs four times on identical fresh gateways:

* **in-memory baseline** — no durability plane at all (the pre-ISSUE 9
  gateway);
* **fsync="off"** — every event journaled, flushed to the OS page
  cache, never fsynced.  The acceptance bar: within ~1.1x of the
  in-memory baseline on this workload shape (journaling is one JSON
  dump + one buffered write per event);
* **fsync="batch"** — one fsync per front-door flush (the durable
  default: a process crash loses nothing, an OS crash at most one
  batch);
* **fsync="always"** — one fsync per journaled event (every completed
  append survives an OS crash; the price ceiling).

Reported and persisted to ``benchmarks/results/BENCH_durability.json``
(a CI artifact, like ``BENCH_gateway.json``): per-mode wall time, QPS,
overhead ratio vs the in-memory baseline, and the WAL's physical
footprint (segments + checkpoint bytes).  Only the ``off`` ratio is
asserted (with CI-noise headroom over the ~1.1x target); ``batch`` and
``always`` prices are recorded, not gated — they depend on the host's
fsync latency, which CI runners do not control.

Run standalone:  PYTHONPATH=src python benchmarks/bench_durability.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.common.rng import RngStream
from repro.federation import (
    BatchObserveRequest,
    DurabilityConfig,
    FederationConfig,
    SubmitRequest,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem

from bench_gateway_throughput import (
    INGEST_BATCH_MAX,
    PATIENTS,
    TENANTS,
    build_traffic,
)

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_durability.json"

FULL_REQUESTS = 40_000
QUICK_REQUESTS = 2_880

#: Acceptance target for fsync="off" vs in-memory, and the asserted
#: ceiling (headroom over the target for CI-runner noise).
OFF_OVERHEAD_TARGET = 1.10
OFF_OVERHEAD_CEILING = 1.35

MODES = ("off", "batch", "always")


@dataclass(frozen=True)
class ModeResult:
    """One traffic replay under one durability policy."""

    mode: str  # "memory" | "off" | "batch" | "always"
    seconds: float
    requests: int
    fits: int
    failed: int
    wal_bytes: int
    wal_segments: int

    @property
    def qps(self) -> float:
        return self.requests / self.seconds


@dataclass(frozen=True)
class DurabilityReport:
    tenants: int
    requests: int
    envelopes: int
    memory: ModeResult
    modes: tuple[ModeResult, ...]

    def overhead(self, result: ModeResult) -> float:
        """Wall-time ratio vs the in-memory baseline (1.0 = free)."""
        return result.seconds / self.memory.seconds


def _gateway_config(durability: DurabilityConfig | None) -> FederationConfig:
    return FederationConfig(
        max_window=24,
        ingest_batch_max=INGEST_BATCH_MAX,
        ingest_queue_depth=4 * INGEST_BATCH_MAX,
        durability=durability,
    )


def build_system(durability: DurabilityConfig | None) -> tuple[MidasSystem, list[str]]:
    """The bench_gateway_throughput federation, durability optional."""
    midas = MidasSystem(
        patient_count=PATIENTS, seed=11, config=_gateway_config(durability)
    )
    bases = list(MEDICAL_QUERIES.values())
    keys = []
    for i in range(TENANTS):
        template = replace(bases[i % len(bases)], key=f"tenant-{i:03d}")
        midas.gateway.register_template(template)
        keys.append(template.key)
    return midas, keys


def _wal_footprint(directory: Path | None) -> tuple[int, int]:
    if directory is None or not directory.exists():
        return 0, 0
    files = [path for path in directory.iterdir() if path.is_file()]
    return sum(path.stat().st_size for path in files), sum(
        1 for path in files if path.suffix == ".log"
    )


def run_mode(mode: str, total: int) -> ModeResult:
    """One full ingest+drain replay; ``mode`` "memory" skips the WAL."""
    wal_dir: Path | None = None
    durability = None
    if mode != "memory":
        wal_dir = Path(tempfile.mkdtemp(prefix=f"bench-wal-{mode}-"))
        durability = DurabilityConfig(dir=wal_dir, fsync=mode)
    try:
        midas, keys = build_system(durability)
        traffic, requests = build_traffic(keys, total, RngStream(5, "bench-ingest"))
        tickets: list = []
        try:
            started = time.perf_counter()
            for request in traffic:
                admitted = midas.gateway.ingest(request)
                if isinstance(admitted, list):
                    tickets.extend(admitted)
                else:
                    tickets.append(admitted)
            midas.gateway.drain()
            seconds = time.perf_counter() - started
            failed = sum(1 for ticket in tickets if ticket.error is not None)
            fits = midas.gateway.serving_stats.fits
        finally:
            midas.gateway.close()
        wal_bytes, wal_segments = _wal_footprint(wal_dir)
        return ModeResult(
            mode=mode,
            seconds=seconds,
            requests=requests,
            fits=fits,
            failed=failed,
            wal_bytes=wal_bytes,
            wal_segments=wal_segments,
        )
    finally:
        if wal_dir is not None:
            shutil.rmtree(wal_dir, ignore_errors=True)


def run_durability_bench(quick: bool = False) -> DurabilityReport:
    total = QUICK_REQUESTS if quick else FULL_REQUESTS
    memory = run_mode("memory", total)
    modes = tuple(run_mode(mode, total) for mode in MODES)
    envelopes = memory.requests  # rows; envelope count not re-derived here
    return DurabilityReport(
        tenants=TENANTS,
        requests=memory.requests,
        envelopes=envelopes,
        memory=memory,
        modes=modes,
    )


def format_report(report: DurabilityReport) -> str:
    lines = [
        "WAL journaling overhead (bench_gateway_throughput workload shape)",
        "-----------------------------------------------------------------",
        f"tenant templates : {report.tenants}",
        f"requests (rows)  : {report.requests}",
        f"in-memory        : {report.memory.seconds:8.2f} s "
        f"({report.memory.qps:8.1f} req/s)  <- baseline",
    ]
    for result in report.modes:
        lines.append(
            f"fsync={result.mode:<7}: {result.seconds:8.2f} s "
            f"({result.qps:8.1f} req/s)  {report.overhead(result):5.3f}x, "
            f"wal={result.wal_bytes / 1e6:.1f} MB in {result.wal_segments} segment(s)"
        )
    lines.append(
        f"fsync=off target : <= {OFF_OVERHEAD_TARGET}x "
        f"(asserted ceiling {OFF_OVERHEAD_CEILING}x for CI noise)"
    )
    return "\n".join(lines)


def write_json(report: DurabilityReport) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "durability",
        "workload": "bench_gateway_throughput",
        "tenants": report.tenants,
        "requests": report.requests,
        "ingest_batch_max": INGEST_BATCH_MAX,
        "host_cpu_count": os.cpu_count(),
        "off_overhead_target": OFF_OVERHEAD_TARGET,
        "off_overhead_ceiling": OFF_OVERHEAD_CEILING,
        "memory": {
            "seconds": round(report.memory.seconds, 3),
            "qps": round(report.memory.qps, 1),
            "fits": report.memory.fits,
        },
        "modes": {
            result.mode: {
                "seconds": round(result.seconds, 3),
                "qps": round(result.qps, 1),
                "overhead": round(report.overhead(result), 4),
                "fits": result.fits,
                "wal_bytes": result.wal_bytes,
                "wal_segments": result.wal_segments,
            }
            for result in report.modes
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def check_report(report: DurabilityReport) -> None:
    by_mode = {result.mode: result for result in report.modes}
    assert set(by_mode) == set(MODES)
    # Every replay processed the identical stream, failure-free, and
    # the durable runs journaled real bytes.
    for result in (report.memory, *report.modes):
        assert result.requests == report.requests, result.mode
        assert result.failed == 0, (result.mode, result.failed)
        assert result.fits == report.memory.fits, result.mode
    for mode in MODES:
        assert by_mode[mode].wal_bytes > 0, mode
    # The acceptance gate: journaling without fsync is near-free.
    off_overhead = report.overhead(by_mode["off"])
    assert off_overhead <= OFF_OVERHEAD_CEILING, (
        f"fsync='off' overhead {off_overhead:.3f}x exceeds the "
        f"{OFF_OVERHEAD_CEILING}x ceiling (target {OFF_OVERHEAD_TARGET}x)"
    )


def test_durability_overhead(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(
        run_durability_bench, kwargs={"quick": True}, rounds=1, iterations=1
    )
    record_result("durability", format_report(report))
    write_json(report)
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller request stream for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_durability_bench(quick=arguments.quick)
    print(format_report(final))
    write_json(final)
    check_report(final)
