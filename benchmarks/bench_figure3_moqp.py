"""Figure 3 — genetic/Pareto MOQP vs WSM-scalarised MOQP.

Shape asserted:

* the GA+Pareto pipeline optimises once and answers every weight change
  from its Pareto set, while the WSM pipeline re-optimises per change —
  so across the sweep the WSM branch consumes several times more
  cost-model evaluations;
* the GA front covers most of the exact front's hypervolume;
* the GA+Pareto final plans are no worse on average than the WSM-GA
  plans (WSM additionally risks missing non-convex Pareto points).
"""

from conftest import record_result

from repro.experiments import format_figure3, run_figure3
from repro.experiments.figure3 import Figure3Config


def test_figure3_moqp(benchmark):
    config = Figure3Config()
    result = benchmark.pedantic(run_figure3, args=(config,), rounds=1, iterations=1)
    record_result("figure3_moqp", format_figure3(result))
    sweep = len(result.weight_sweep)
    assert sweep >= 5
    # One-off GA cost amortises over the sweep; WSM pays per change.
    assert result.wsm_evaluations > 2 * result.ga_evaluations
    # The evolved front is a good approximation of the exact one.
    assert result.hypervolume_ratio > 0.80
    # Plan quality: GA+Pareto at least matches the WSM branch on average.
    assert result.mean_ga_regret <= result.mean_wsm_regret + 0.02
