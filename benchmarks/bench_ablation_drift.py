"""Ablation — who wins as the drift rate varies.

DESIGN.md's predicted crossover: with **no drift** the full-history BML
should be at least as good as DREAM (more data, no staleness); under the
**paper** scenario and harsher drift, full history accumulates expired
information and DREAM wins by a growing factor.
"""

import statistics

from conftest import record_result

from repro.common.text import render_table
from repro.experiments.mre import evaluate_history
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload

SCENARIOS = ("none", "mild", "paper", "harsh")
SEEDS = (7, 11, 23)


def run_drift_ablation():
    by_scenario = {}
    for scenario in SCENARIOS:
        dream_values, full_values = [], []
        for seed in SEEDS:
            workload = TpchFederationWorkload(
                TpchFederationConfig(
                    scale_mib=100, queries=("q12",), drift=scenario, seed=seed
                )
            )
            history = workload.build_history("q12", 130)
            mre, _ = evaluate_history(history, 20)
            dream_values.append(mre["DREAM"])
            full_values.append(mre["BML"])
        by_scenario[scenario] = (
            statistics.fmean(dream_values),
            statistics.fmean(full_values),
        )
    return by_scenario


def test_ablation_drift(benchmark):
    by_scenario = benchmark.pedantic(run_drift_ablation, rounds=1, iterations=1)
    rows = [
        (name, f"{dream:.3f}", f"{full:.3f}", f"{full / dream:.2f}x")
        for name, (dream, full) in by_scenario.items()
    ]
    text = render_table(
        ["drift", "DREAM MRE", "BML (full) MRE", "full/DREAM"],
        rows,
        title="Ablation: DREAM vs full-history BML across drift scenarios (Q12).",
    )
    record_result("ablation_drift", text)
    none_dream, none_full = by_scenario["none"]
    paper_dream, paper_full = by_scenario["paper"]
    harsh_dream, harsh_full = by_scenario["harsh"]
    # Without drift, full history is competitive (no staleness penalty).
    assert none_full <= none_dream * 1.5
    # Under drift, expired information hurts the full history model.
    assert paper_full > 1.5 * paper_dream
    assert harsh_full > 1.5 * harsh_dream
    # The crossover: drift flips the ranking.
    assert (paper_full / paper_dream) > (none_full / none_dream)
