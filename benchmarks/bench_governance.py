"""Governance-plane overhead and equivalence bench.

The ISSUE 8 acceptance harness for the governance subsystem.  Three
measured cases per serving backend (in-process ``threaded`` and
cross-process ``sharded`` with 2 workers), each replaying the **same**
pre-materialised traffic script (warm-up observes, then interleaved
submits/observes over two medical templates):

* ``none`` — no governance plane at all (the pre-ISSUE-8 gateway);
* ``permissive`` — ``GovernanceConfig()``: identity/audit machinery on,
  zero rules.  The **hard gate** is bitwise equality with ``none``:
  identical predicted and measured cost vectors per submission,
  identical model window sizes, identical fit counts;
* ``restricted`` — ``restricted(patient @ cloud-a)`` with an identified
  clinician: every returned Pareto plan must execute at cloud-a, and the
  admissible QEP space must be strictly smaller.

Reported and persisted to ``benchmarks/results/BENCH_governance.json``
(a CI artifact, like ``BENCH_gateway.json``): per-case wall time, the
permissive/none overhead ratio (the cost of auditing every envelope),
the enforcement case's space reduction, and the audit-chain length +
live verification result.  Overhead ratios are informational — the
simulator pipeline dominates per-item cost on any host — the bitwise
gates are what is asserted.

Run standalone:  PYTHONPATH=src python benchmarks/bench_governance.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.common.rng import RngStream
from repro.federation import (
    DataPolicy,
    FederationConfig,
    GovernanceConfig,
    ObserveRequest,
    Principal,
    SubmitRequest,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem

RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_governance.json"

PATIENTS = 250
KEYS = ("medical-demographics", "medical-severe-cases")
FULL_SUBMITS = 60
QUICK_SUBMITS = 12
WARM_RUNS = 10

CLINICIAN = Principal("bench-clinician", "clinician", "cloud-a")

RESTRICTED = GovernanceConfig(
    policies=(DataPolicy("patient", "cloud-a", "restricted"),)
)


@dataclass(frozen=True)
class CaseResult:
    backend: str
    case: str
    seconds: float
    submits: int
    fits: int
    #: Per-submission (predicted, measured, window) digests, in order.
    digests: tuple
    #: Pareto execution sites seen across every submission.
    pareto_sites: tuple[str, ...]
    #: Mean enumerated-space size per submission.
    mean_space: float
    audit_records: int
    audit_valid: bool


@dataclass(frozen=True)
class GovernanceReport:
    cases: tuple[CaseResult, ...]

    def case(self, backend: str, name: str) -> CaseResult:
        for result in self.cases:
            if result.backend == backend and result.case == name:
                return result
        raise KeyError((backend, name))

    def overhead_ratio(self, backend: str) -> float:
        """Permissive-vs-none wall time (the price of auditing)."""
        return (
            self.case(backend, "permissive").seconds
            / self.case(backend, "none").seconds
        )

    def equivalent(self, backend: str) -> bool:
        """Bitwise: permissive digests/fits == none digests/fits."""
        none, permissive = self.case(backend, "none"), self.case(backend, "permissive")
        return none.digests == permissive.digests and none.fits == permissive.fits


def build_traffic(submits: int, seed: int) -> list:
    """One shared request script (identical objects for every case)."""
    rng = RngStream(seed, "bench-governance")
    traffic: list = []
    for _ in range(WARM_RUNS):
        for key in KEYS:
            traffic.append(("observe", key, MEDICAL_QUERIES[key].sample_params(rng)))
    for index in range(submits):
        key = KEYS[index % len(KEYS)]
        traffic.append(("submit", key, MEDICAL_QUERIES[key].sample_params(rng)))
        if index % 3 == 0:
            traffic.append(
                ("observe", key, MEDICAL_QUERIES[key].sample_params(rng))
            )
    return traffic


def run_case(
    backend: str,
    case: str,
    governance: GovernanceConfig | None,
    principal: Principal | None,
    traffic: list,
    seed: int,
) -> CaseResult:
    config = FederationConfig(
        max_window=24,
        serving_backend=backend,
        shard_workers=2 if backend == "sharded" else None,
        governance=governance,
    )
    midas = MidasSystem(patient_count=PATIENTS, seed=seed, config=config)
    gateway = midas.gateway
    digests = []
    sites: set[str] = set()
    spaces = []
    submits = 0
    try:
        started = time.perf_counter()
        for op, key, params in traffic:
            if op == "submit":
                report = gateway.submit(
                    SubmitRequest(key, params, principal=principal)
                )
                submits += 1
                digests.append(
                    (
                        tuple(sorted(report.predicted_costs.items())),
                        tuple(sorted(report.measured_costs.items())),
                        report.cost_model.training_size,
                    )
                )
                sites.update(
                    c.payload.execution.site for c in report.pareto_set
                )
                spaces.append(report.candidate_count)
            else:
                gateway.observe(ObserveRequest(key, params, principal=principal))
        seconds = time.perf_counter() - started
        fits = gateway.serving_stats.fits
        audit = gateway.audit_report(limit=0)
    finally:
        gateway.close()
    return CaseResult(
        backend=backend,
        case=case,
        seconds=seconds,
        submits=submits,
        fits=fits,
        digests=tuple(digests),
        pareto_sites=tuple(sorted(sites)),
        mean_space=sum(spaces) / len(spaces),
        audit_records=audit.length,
        audit_valid=audit.chain_valid,
    )


def run_governance_bench(quick: bool = False) -> GovernanceReport:
    submits = QUICK_SUBMITS if quick else FULL_SUBMITS
    traffic = build_traffic(submits, seed=23)
    cases = []
    for backend in ("threaded", "sharded"):
        cases.append(run_case(backend, "none", None, None, traffic, seed=23))
        cases.append(
            run_case(backend, "permissive", GovernanceConfig(), None, traffic, seed=23)
        )
        cases.append(
            run_case(backend, "restricted", RESTRICTED, CLINICIAN, traffic, seed=23)
        )
    return GovernanceReport(cases=tuple(cases))


def format_report(report: GovernanceReport) -> str:
    lines = [
        "Governance plane: overhead + bitwise equivalence",
        "------------------------------------------------",
    ]
    for result in report.cases:
        lines.append(
            f"{result.backend:8s} {result.case:10s}: "
            f"{result.seconds:7.2f} s, submits={result.submits}, "
            f"fits={result.fits}, mean_space={result.mean_space:7.1f}, "
            f"sites={','.join(result.pareto_sites)}, "
            f"audit={result.audit_records} ({'ok' if result.audit_valid else 'BAD'})"
        )
    for backend in ("threaded", "sharded"):
        none = report.case(backend, "none")
        restricted = report.case(backend, "restricted")
        lines.append(
            f"{backend}: permissive bitwise-equal={report.equivalent(backend)}, "
            f"audit overhead={report.overhead_ratio(backend):.3f}x, "
            f"restricted space {none.mean_space:.0f} -> {restricted.mean_space:.0f}"
        )
    return "\n".join(lines)


def write_json(report: GovernanceReport) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "governance",
        "host_cpu_count": os.cpu_count(),
        "warm_runs": WARM_RUNS,
    }
    for result in report.cases:
        prefix = f"{result.backend}_{result.case}"
        payload[f"{prefix}_seconds"] = round(result.seconds, 3)
        payload[f"{prefix}_submits"] = result.submits
        payload[f"{prefix}_fits"] = result.fits
        payload[f"{prefix}_mean_space"] = round(result.mean_space, 1)
        payload[f"{prefix}_pareto_sites"] = list(result.pareto_sites)
        payload[f"{prefix}_audit_records"] = result.audit_records
        payload[f"{prefix}_audit_valid"] = result.audit_valid
    for backend in ("threaded", "sharded"):
        payload[f"{backend}_permissive_bitwise_equal"] = report.equivalent(backend)
        payload[f"{backend}_audit_overhead_ratio"] = round(
            report.overhead_ratio(backend), 4
        )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def check_report(report: GovernanceReport) -> None:
    for backend in ("threaded", "sharded"):
        # Hard gate: a permissive governance plane changes nothing the
        # pipeline computes — bitwise, on both backends.
        assert report.equivalent(backend), backend
        none = report.case(backend, "none")
        permissive = report.case(backend, "permissive")
        restricted = report.case(backend, "restricted")
        # The ungoverned gateway keeps no audit log; the governed ones do.
        assert none.audit_records == 0
        assert permissive.audit_records > 0 and permissive.audit_valid
        assert restricted.audit_records > 0 and restricted.audit_valid
        # Enforcement: the restricted clinician's plans all execute at
        # the restricted site, from a strictly smaller admissible space.
        assert restricted.pareto_sites == ("cloud-a",), restricted.pareto_sites
        assert restricted.mean_space < none.mean_space
        assert len(none.pareto_sites) >= 1


def test_governance_bench(benchmark):
    from conftest import record_result

    report = benchmark.pedantic(
        run_governance_bench, kwargs={"quick": True}, rounds=1, iterations=1
    )
    record_result("governance", format_report(report))
    write_json(report)
    check_report(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller traffic script for CI smoke runs"
    )
    arguments = parser.parse_args()
    final = run_governance_bench(quick=arguments.quick)
    print(format_report(final))
    write_json(final)
    check_report(final)
