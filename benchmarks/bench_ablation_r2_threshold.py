"""Ablation — sensitivity of DREAM to the R^2_require threshold.

The paper fixes R^2_require = 0.8 (§3).  This ablation sweeps the
threshold and reports DREAM's MRE and mean window size: low thresholds
stop too early (variance), a 0.8-ish threshold balances, and very high
thresholds push the window toward Mmax (staleness).
"""

from conftest import record_result

from repro.common.text import render_table
from repro.experiments.mre import evaluate_history
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload

THRESHOLDS = (0.5, 0.65, 0.8, 0.9, 0.97)


def run_threshold_ablation():
    workload = TpchFederationWorkload(
        TpchFederationConfig(scale_mib=100, queries=("q12",))
    )
    history = workload.build_history("q12", 130)
    rows = []
    by_threshold = {}
    for threshold in THRESHOLDS:
        mre, window = evaluate_history(history, 20, r2_required=threshold)
        rows.append((f"{threshold:.2f}", f"{mre['DREAM']:.3f}", f"{window:.1f}"))
        by_threshold[threshold] = (mre["DREAM"], window)
    return rows, by_threshold


def test_ablation_r2_threshold(benchmark):
    rows, by_threshold = benchmark.pedantic(run_threshold_ablation, rounds=1, iterations=1)
    text = render_table(
        ["R^2_require", "DREAM MRE", "mean window"],
        rows,
        title="Ablation: DREAM sensitivity to R^2_require (TPC-H Q12, 100 MiB).",
    )
    record_result("ablation_r2_threshold", text)
    # Window size grows monotonically with the threshold.
    windows = [by_threshold[t][1] for t in THRESHOLDS]
    assert all(a <= b + 1e-9 for a, b in zip(windows, windows[1:])), windows
    # Every threshold stays usable (MRE is finite and sane).
    assert all(by_threshold[t][0] < 1.0 for t in THRESHOLDS)
