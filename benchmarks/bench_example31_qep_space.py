"""Example 3.1 — 18,200 equivalent configurations; estimation cost vs M.

Checks the paper's configuration count exactly and demonstrates the
estimation-side motivation for DREAM: the cost of fitting+estimating all
equivalent QEPs grows with the training-set size M, so keeping M near
N = L + 2 is materially cheaper at Example 3.1 scale.
"""

from conftest import record_result

from repro.experiments import format_example31, run_example31


def test_example31_qep_space(benchmark):
    result = benchmark.pedantic(run_example31, rounds=1, iterations=1)
    record_result("example31_qep_space", format_example31(result))
    assert result.configuration_count == 18_200
    assert result.matches_paper
    sizes = sorted(result.estimation_seconds)
    # Estimation with the largest window is materially more expensive
    # than with the DREAM-sized window — the Example 3.1 argument.
    assert result.estimation_seconds[sizes[-1]] > 2 * result.estimation_seconds[sizes[0]]
