"""Shared helpers for the benchmark harness.

Each ``bench_*`` module reproduces one table or figure of the paper:
it runs the experiment once under pytest-benchmark timing, prints the
paper-shaped output, writes it to ``benchmarks/results/`` and asserts the
*shape* of the result (who wins, by roughly what factor) — absolute
numbers differ from the paper because the substrate is a simulator.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
